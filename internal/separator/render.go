package separator

import (
	"fmt"
	"sort"
	"strings"
)

// Render pretty-prints the decomposition tree, one node per line, indented
// by depth — the textual analogue of the paper's Figure 1 (a separator
// decomposition tree of a 9×9 grid graph). describe, if non-nil, maps a
// vertex id to a label (e.g. grid coordinates); otherwise numeric ids are
// printed. Large sets are summarized.
func (t *Tree) Render(describe func(v int) string) string {
	var sb strings.Builder
	var walk func(id, depth int)
	walk = func(id, depth int) {
		nd := &t.Nodes[id]
		indent := strings.Repeat("  ", depth)
		if nd.IsLeaf() {
			fmt.Fprintf(&sb, "%sleaf  |V|=%-3d V=%s B=%s\n",
				indent, len(nd.V), formatSet(nd.V, describe, 12), formatSet(nd.B, describe, 8))
			return
		}
		fmt.Fprintf(&sb, "%snode  |V|=%-3d S=%s B=%s\n",
			indent, len(nd.V), formatSet(nd.S, describe, 12), formatSet(nd.B, describe, 8))
		walk(nd.Children[0], depth+1)
		walk(nd.Children[1], depth+1)
	}
	walk(0, 0)
	return sb.String()
}

func formatSet(vs []int, describe func(v int) string, max int) string {
	if len(vs) == 0 {
		return "{}"
	}
	sorted := append([]int(nil), vs...)
	sort.Ints(sorted)
	var parts []string
	for i, v := range sorted {
		if i >= max {
			parts = append(parts, fmt.Sprintf("…+%d", len(sorted)-max))
			break
		}
		if describe != nil {
			parts = append(parts, describe(v))
		} else {
			parts = append(parts, fmt.Sprintf("%d", v))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Costs aggregates the Section 5 cost functionals of the decomposition —
// the quantities whose sums the paper's analysis bounds:
//
//	SumS     = Σ|S(t)|          (O(n): total separator mass)
//	SumS3    = Σ|S(t)|³         (Algorithm 4.1 closure work, O(n+n^{3μ}))
//	SumB2S   = Σ|B(t)|²·|S(t)|  (Algorithm 4.1 3-limited work, O(n+n^{3μ}))
//	SumSB3   = Σ(|S|+|B|)³      (Algorithm 4.3 per-iteration work)
//	SumS2B2  = Σ(|S|²+|B|²)     (|E+| contributions, O(n+n^{2μ}))
//	SumLeaf3 = Σ|V(leaf)|³      (leaf closures, O(n))
type Costs struct {
	SumS, SumS3, SumB2S, SumSB3, SumS2B2, SumLeaf3 int64
}

// Costs computes the Section 5 cost functionals.
func (t *Tree) Costs() Costs {
	var c Costs
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		s, b := int64(len(nd.S)), int64(len(nd.B))
		c.SumS += s
		c.SumS3 += s * s * s
		c.SumB2S += b * b * s
		c.SumSB3 += (s + b) * (s + b) * (s + b)
		c.SumS2B2 += s*s + b*b
		if nd.IsLeaf() {
			v := int64(len(nd.V))
			c.SumLeaf3 += v * v * v
		}
	}
	return c
}

// Summary returns aggregate statistics of the tree: node count, height,
// max leaf size, max separator, and the total sizes Σ|S(t)|, Σ|B(t)| that
// drive the Section 5 work bounds.
func (t *Tree) Summary() string {
	var sumS, sumB, leaves int
	for i := range t.Nodes {
		sumS += len(t.Nodes[i].S)
		sumB += len(t.Nodes[i].B)
		if t.Nodes[i].IsLeaf() {
			leaves++
		}
	}
	return fmt.Sprintf("nodes=%d leaves=%d height=%d maxLeaf=%d maxSep=%d Σ|S|=%d Σ|B|=%d",
		len(t.Nodes), leaves, t.Height, t.MaxLeafSize(), t.MaxSeparatorSize(), sumS, sumB)
}
