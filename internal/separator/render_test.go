package separator

import (
	"strings"
	"testing"
)

func TestRenderAndSummary(t *testing.T) {
	tree, _, grid := buildGridTree(t, []int{9, 9}, 9)
	out := tree.Render(nil)
	if !strings.Contains(out, "node") || !strings.Contains(out, "leaf") {
		t.Fatalf("rendering lacks structure:\n%s", out)
	}
	// Indentation depth must reflect the tree height.
	maxIndent := 0
	for _, line := range strings.Split(out, "\n") {
		indent := 0
		for strings.HasPrefix(line[indent:], "  ") {
			indent += 2
		}
		if indent/2 > maxIndent {
			maxIndent = indent / 2
		}
	}
	if maxIndent != tree.Height {
		t.Fatalf("max indent %d != height %d", maxIndent, tree.Height)
	}
	// Custom describe function appears in the output.
	withCoords := tree.Render(func(v int) string {
		c := grid.Coord[v]
		return "(" + itoa(c[0]) + "," + itoa(c[1]) + ")"
	})
	if !strings.Contains(withCoords, "(4,") {
		t.Fatalf("coordinates missing from render")
	}
	sum := tree.Summary()
	for _, want := range []string{"nodes=", "height=", "Σ|S|="} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q: %s", want, sum)
		}
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b []byte
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

func TestRenderTruncatesLargeSets(t *testing.T) {
	tree, _, _ := buildGridTree(t, []int{20, 20}, 8)
	out := tree.Render(nil)
	if !strings.Contains(out, "…+") {
		t.Fatal("large sets should be truncated with an ellipsis")
	}
}
