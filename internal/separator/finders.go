package separator

import (
	"errors"
	"fmt"
	"sort"

	"sepsp/internal/graph"
)

// ErrCannotSeparate is returned by finders when no useful separator exists
// for the given subgraph; the builder closes the node as a leaf.
var ErrCannotSeparate = errors.New("separator: cannot separate subgraph")

// CoordinateFinder separates lattice graphs by axis-aligned hyperplane cuts:
// it picks the dimension with the largest extent within sub and removes the
// median coordinate slice. It requires that every skeleton edge connect
// vertices whose coordinates differ by at most 1 in exactly one dimension
// (true for the grid generators); Tree.Validate will reject decompositions
// built over other graphs.
//
// For a d-dimensional grid with Θ(n^(1/d)) sides this yields the trivial
// k^((d-1)/d)-separator decomposition the paper cites for grid graphs; for
// anisotropic w×h "cigar" grids it yields k^μ separators with μ = log w /
// log(wh) at the top of the recursion.
type CoordinateFinder struct {
	// Coord[v] is the integer lattice coordinate of vertex v.
	Coord [][]int
}

// Separate implements Finder.
func (cf *CoordinateFinder) Separate(_ *graph.Skeleton, sub []int) (sep, s1, s2 []int, err error) {
	if len(sub) == 0 {
		return nil, nil, nil, ErrCannotSeparate
	}
	dims := len(cf.Coord[sub[0]])
	bestDim, bestExtent := -1, 0
	for d := 0; d < dims; d++ {
		lo, hi := cf.Coord[sub[0]][d], cf.Coord[sub[0]][d]
		for _, v := range sub[1:] {
			c := cf.Coord[v][d]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > bestExtent {
			bestExtent = hi - lo
			bestDim = d
		}
	}
	if bestDim < 0 || bestExtent < 2 {
		// All vertices share (almost) one coordinate in every dimension;
		// a hyperplane cut cannot produce two non-empty sides.
		return nil, nil, nil, ErrCannotSeparate
	}
	// Median coordinate along bestDim, by vertex count.
	vals := make([]int, len(sub))
	for i, v := range sub {
		vals[i] = cf.Coord[v][bestDim]
	}
	sort.Ints(vals)
	med := vals[len(vals)/2]
	// Keep both sides non-empty: nudge the cut inward if the median sits at
	// an extreme.
	if med == vals[0] {
		med++
	}
	if med == vals[len(vals)-1] {
		med--
	}
	for _, v := range sub {
		switch c := cf.Coord[v][bestDim]; {
		case c < med:
			s1 = append(s1, v)
		case c > med:
			s2 = append(s2, v)
		default:
			sep = append(sep, v)
		}
	}
	if len(s1) == 0 && len(s2) == 0 {
		return nil, nil, nil, ErrCannotSeparate
	}
	return sep, s1, s2, nil
}

// SlabFinder separates geometric (radius-r) graphs by removing a slab of
// half-width r/2 around the median coordinate in the widest dimension: any
// two points on opposite strict sides are more than r apart, so no edge
// crosses. This is the flat-cut analogue of the Miller–Teng–Vavasis sphere
// separators for overlap graphs (Section 1).
type SlabFinder struct {
	Points [][]float64
	Radius float64
}

// Separate implements Finder.
func (sf *SlabFinder) Separate(_ *graph.Skeleton, sub []int) (sep, s1, s2 []int, err error) {
	if len(sub) == 0 {
		return nil, nil, nil, ErrCannotSeparate
	}
	dims := len(sf.Points[sub[0]])
	bestDim, bestExtent := -1, 0.0
	for d := 0; d < dims; d++ {
		lo, hi := sf.Points[sub[0]][d], sf.Points[sub[0]][d]
		for _, v := range sub[1:] {
			c := sf.Points[v][d]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > bestExtent {
			bestExtent = hi - lo
			bestDim = d
		}
	}
	if bestDim < 0 || bestExtent <= sf.Radius {
		return nil, nil, nil, ErrCannotSeparate
	}
	vals := make([]float64, len(sub))
	for i, v := range sub {
		vals[i] = sf.Points[v][bestDim]
	}
	sort.Float64s(vals)
	med := vals[len(vals)/2]
	half := sf.Radius / 2
	for _, v := range sub {
		switch c := sf.Points[v][bestDim]; {
		case c < med-half:
			s1 = append(s1, v)
		case c > med+half:
			s2 = append(s2, v)
		default:
			sep = append(sep, v)
		}
	}
	if len(s1) == 0 && len(s2) == 0 {
		return nil, nil, nil, ErrCannotSeparate
	}
	return sep, s1, s2, nil
}

// BFSFinder separates connected subgraphs by removing one BFS level: levels
// strictly below form one side, levels strictly above the other. It chooses
// the smallest level whose removal keeps both sides at most balance·|sub|
// (default ¾). This is the classical layered separator; it gives O(√n)
// separators on grid-like and bounded-aspect planar graphs, standing in for
// the Gazit–Miller planar separator algorithm (see DESIGN.md substitutions).
type BFSFinder struct {
	// Balance is the maximum allowed side fraction; 0 means ¾.
	Balance float64
}

// Separate implements Finder.
func (bf *BFSFinder) Separate(sk *graph.Skeleton, sub []int) (sep, s1, s2 []int, err error) {
	balance := bf.Balance
	if balance == 0 {
		balance = 0.75
	}
	if balance <= 0.5 || balance >= 1 {
		return nil, nil, nil, fmt.Errorf("separator: BFSFinder balance %v out of (0.5,1)", balance)
	}
	if len(sub) < 3 {
		return nil, nil, nil, ErrCannotSeparate
	}
	levels := sk.BFSLevels(sub, sub[0])
	if len(levels) != len(sub) {
		return nil, nil, nil, fmt.Errorf("separator: BFSFinder requires connected sub (%d of %d reached)", len(levels), len(sub))
	}
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	count := make([]int, maxLevel+1)
	for _, l := range levels {
		count[l]++
	}
	limit := int(balance * float64(len(sub)))
	bestLevel, bestSize := -1, len(sub)+1
	below := 0
	for l := 0; l <= maxLevel; l++ {
		above := len(sub) - below - count[l]
		if below <= limit && above <= limit && count[l] < bestSize && below+above > 0 {
			bestLevel, bestSize = l, count[l]
		}
		below += count[l]
	}
	if bestLevel < 0 {
		return nil, nil, nil, ErrCannotSeparate
	}
	for _, v := range sub {
		switch l := levels[v]; {
		case l < bestLevel:
			s1 = append(s1, v)
		case l > bestLevel:
			s2 = append(s2, v)
		default:
			sep = append(sep, v)
		}
	}
	return sep, s1, s2, nil
}

// TreeDecompFinder separates graphs of bounded treewidth using a provided
// tree decomposition: the separator is a centroid bag (restricted to sub),
// and the sides are the unions of the decomposition-tree components around
// it. Separator size is bounded by the decomposition width + 1, i.e. O(1)
// for a fixed-width family — the μ→0 extreme of the paper's analysis.
type TreeDecompFinder struct {
	Bags   [][]int
	Parent []int

	adj  [][]int // decomposition-tree adjacency, built lazily
	home []int   // home bag per vertex: first bag listing it
}

func (tf *TreeDecompFinder) init() {
	if tf.adj != nil {
		return
	}
	nb := len(tf.Bags)
	tf.adj = make([][]int, nb)
	for i, p := range tf.Parent {
		if p >= 0 {
			tf.adj[i] = append(tf.adj[i], p)
			tf.adj[p] = append(tf.adj[p], i)
		}
	}
	maxV := -1
	for _, bag := range tf.Bags {
		for _, v := range bag {
			if v > maxV {
				maxV = v
			}
		}
	}
	tf.home = make([]int, maxV+1)
	for i := range tf.home {
		tf.home[i] = -1
	}
	for bi, bag := range tf.Bags {
		for _, v := range bag {
			if tf.home[v] == -1 {
				tf.home[v] = bi
			}
		}
	}
}

// Separate implements Finder.
func (tf *TreeDecompFinder) Separate(_ *graph.Skeleton, sub []int) (sep, s1, s2 []int, err error) {
	tf.init()
	nb := len(tf.Bags)
	weight := make([]int, nb)
	inSub := make(map[int]bool, len(sub))
	for _, v := range sub {
		inSub[v] = true
		h := tf.home[v]
		if h < 0 {
			return nil, nil, nil, fmt.Errorf("separator: vertex %d not covered by tree decomposition", v)
		}
		weight[h]++
	}
	total := len(sub)
	// Weighted centroid of the bag tree: compute subtree weights from an
	// arbitrary root (bag 0), then pick the bag minimizing the heaviest
	// component after its removal.
	sub0 := make([]int, nb) // subtree weight rooted at bag 0
	order := make([]int, 0, nb)
	parent := make([]int, nb)
	for i := range parent {
		parent[i] = -2
	}
	stack := []int{0}
	parent[0] = -1
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, b)
		for _, c := range tf.adj[b] {
			if parent[c] == -2 {
				parent[c] = b
				stack = append(stack, c)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		sub0[b] = weight[b]
		for _, c := range tf.adj[b] {
			if parent[c] == b {
				sub0[b] += sub0[c]
			}
		}
	}
	bestBag, bestMax := -1, total+1
	for b := 0; b < nb; b++ {
		maxComp := total - sub0[b] // the "above" component
		for _, c := range tf.adj[b] {
			if parent[c] == b && sub0[c] > maxComp {
				maxComp = sub0[c]
			}
		}
		if maxComp < bestMax {
			bestBag, bestMax = b, maxComp
		}
	}
	if bestBag < 0 {
		return nil, nil, nil, ErrCannotSeparate
	}
	inBag := make(map[int]bool, len(tf.Bags[bestBag]))
	for _, v := range tf.Bags[bestBag] {
		if inSub[v] {
			inBag[v] = true
			sep = append(sep, v)
		}
	}
	// Component id of every bag after removing bestBag.
	compID := make([]int, nb)
	for i := range compID {
		compID[i] = -1
	}
	nComp := 0
	for b := 0; b < nb; b++ {
		if b == bestBag || compID[b] != -1 {
			continue
		}
		stack = stack[:0]
		stack = append(stack, b)
		compID[b] = nComp
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range tf.adj[x] {
				if c != bestBag && compID[c] == -1 {
					compID[c] = nComp
					stack = append(stack, c)
				}
			}
		}
		nComp++
	}
	comps := make([][]int, nComp)
	for _, v := range sub {
		if inBag[v] {
			continue
		}
		ci := compID[tf.home[v]]
		comps[ci] = append(comps[ci], v)
	}
	var nonEmpty [][]int
	for _, c := range comps {
		if len(c) > 0 {
			nonEmpty = append(nonEmpty, c)
		}
	}
	if len(nonEmpty) == 0 {
		return nil, nil, nil, ErrCannotSeparate
	}
	s1, s2 = packComponents(nonEmpty)
	return sep, s1, s2, nil
}
