package separator

import (
	"math"
	"math/rand"
	"testing"

	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
)

// TestCostsScaleWithMu certifies the Section 5 sums directly on the
// decomposition: for the square grid (μ = ½), Σ|S|³ and Σ|B|²|S| must grow
// like n^{1.5} and Σ(|S|²+|B|²) like n·log n, with the root terms dominant.
func TestCostsScaleWithMu(t *testing.T) {
	measure := func(side int) Costs {
		t.Helper()
		tree, _, _ := buildGridTree(t, []int{side, side}, 8)
		return tree.Costs()
	}
	c1 := measure(32) // n = 1024
	c2 := measure(64) // n = 4096 (4×)
	// n^{1.5} quantities should grow ≈ 8× for a 4× n increase; allow slack
	// for the additive O(n) terms.
	ratio := func(a, b int64) float64 { return float64(b) / float64(a) }
	if r := ratio(c1.SumS3, c2.SumS3); r < 5 || r > 11 {
		t.Fatalf("Σ|S|³ ratio %v, want ≈8", r)
	}
	if r := ratio(c1.SumB2S, c2.SumB2S); r < 5 || r > 11 {
		t.Fatalf("Σ|B|²|S| ratio %v, want ≈8", r)
	}
	// Σ|S| is Θ(n).
	if r := ratio(c1.SumS, c2.SumS); r < 3 || r > 5.5 {
		t.Fatalf("Σ|S| ratio %v, want ≈4", r)
	}
	// Σ(|S|²+|B|²) is Θ(n log n): ratio slightly above 4.
	if r := ratio(c1.SumS2B2, c2.SumS2B2); r < 3.5 || r > 7 {
		t.Fatalf("Σ(|S|²+|B|²) ratio %v, want ≈4–5", r)
	}
	// Leaf mass is Θ(n).
	if r := ratio(c1.SumLeaf3, c2.SumLeaf3); r < 3 || r > 5.5 {
		t.Fatalf("Σ|V(leaf)|³ ratio %v, want ≈4", r)
	}
}

func TestCostsKTreeLinear(t *testing.T) {
	// Bounded treewidth: every Section 5 sum is Θ(n).
	measure := func(n int) Costs {
		rngKT := gen.NewKTree(n, 3, gen.UnitWeights(), rand.New(rand.NewSource(int64(n))))
		sk := graph.NewSkeleton(rngKT.G)
		tree, err := Build(sk, &TreeDecompFinder{Bags: rngKT.Decomp.Bags, Parent: rngKT.Decomp.Parent}, Options{LeafSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		return tree.Costs()
	}
	c1, c2 := measure(2000), measure(8000)
	for name, pair := range map[string][2]int64{
		"SumS3":   {c1.SumS3, c2.SumS3},
		"SumB2S":  {c1.SumB2S, c2.SumB2S},
		"SumS2B2": {c1.SumS2B2, c2.SumS2B2},
	} {
		r := float64(pair[1]) / float64(pair[0])
		if math.Abs(r-4) > 1.8 {
			t.Fatalf("%s ratio %v, want ≈4 (linear)", name, r)
		}
	}
}
