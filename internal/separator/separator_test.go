package separator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
)

func buildGridTree(t *testing.T, dims []int, leafSize int) (*Tree, *graph.Skeleton, *gen.Grid) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := gen.NewGrid(dims, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(g.G)
	tree, err := Build(sk, &CoordinateFinder{Coord: g.Coord}, Options{LeafSize: leafSize})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree, sk, g
}

func TestGridTreeValidates(t *testing.T) {
	for _, dims := range [][]int{{9, 9}, {4, 4, 4}, {30, 2}, {1, 17}, {5, 1}} {
		tree, sk, _ := buildGridTree(t, dims, 6)
		if err := tree.Validate(sk); err != nil {
			t.Fatalf("dims=%v: %v", dims, err)
		}
	}
}

func TestGridTreeSeparatorSizes(t *testing.T) {
	// A w×h grid's hyperplane separators never exceed max(w, h)… more
	// precisely, the separator of a subgrid is one slice of its shorter
	// extent. For the square grid, that's O(√n) at every node.
	tree, _, _ := buildGridTree(t, []int{16, 16}, 6)
	for i := range tree.Nodes {
		nd := &tree.Nodes[i]
		if nd.IsLeaf() {
			continue
		}
		bound := int(math.Ceil(math.Sqrt(float64(len(nd.V))))) * 2
		if len(nd.S) > bound {
			t.Fatalf("node %d: |V|=%d |S|=%d exceeds 2√|V|=%d", i, len(nd.V), len(nd.S), bound)
		}
	}
	if tree.Height > 3*17 { // generous: height is O(log n) with constant ≈ 3
		t.Fatalf("height %d too large", tree.Height)
	}
}

func TestLevelFunctions(t *testing.T) {
	tree, _, g := buildGridTree(t, []int{9, 9}, 4)
	n := g.G.N()
	for v := 0; v < n; v++ {
		nd := tree.NodeOf(v)
		if nd < 0 || nd >= len(tree.Nodes) {
			t.Fatalf("NodeOf(%d)=%d", v, nd)
		}
		lv := tree.Level(v)
		node := &tree.Nodes[nd]
		if lv == LevelUndef {
			if !node.IsLeaf() {
				t.Fatalf("undefined-level vertex %d maps to internal node", v)
			}
			if !contains(node.V, v) {
				t.Fatalf("vertex %d not in its leaf", v)
			}
		} else {
			if node.Level != lv {
				t.Fatalf("level(%d)=%d but node level %d", v, lv, node.Level)
			}
			if !contains(node.S, v) {
				t.Fatalf("vertex %d not in separator of node(%d)", v, nd)
			}
			// Minimality: no ancestor separator contains v.
			for p := node.Parent; p >= 0; p = tree.Nodes[p].Parent {
				if contains(tree.Nodes[p].S, v) {
					t.Fatalf("level(%d) not minimal: ancestor %d has it", v, p)
				}
			}
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestBoundaryLevelLowerThanNode(t *testing.T) {
	// Property used by Proposition 3.2: v ∈ B(t) ⟹ level(v) < level(t),
	// and v ∈ S(t) ⟹ level(v) ≤ level(t).
	tree, _, _ := buildGridTree(t, []int{12, 12}, 6)
	for i := range tree.Nodes {
		nd := &tree.Nodes[i]
		for _, v := range nd.B {
			if tree.Level(v) >= nd.Level {
				t.Fatalf("boundary vertex %d of node %d has level %d >= %d", v, i, tree.Level(v), nd.Level)
			}
		}
		for _, v := range nd.S {
			if tree.Level(v) > nd.Level {
				t.Fatalf("separator vertex %d of node %d has level %d > %d", v, i, tree.Level(v), nd.Level)
			}
		}
	}
}

func TestBFSFinderOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.NewGrid([]int{10, 10}, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(g.G)
	tree, err := Build(sk, &BFSFinder{}, Options{LeafSize: 5})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Validate(sk); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBFSFinderBalanceValidation(t *testing.T) {
	var bf BFSFinder
	bf.Balance = 0.4 // invalid
	rng := rand.New(rand.NewSource(2))
	g := gen.NewGrid([]int{5, 5}, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(g.G)
	sub := make([]int, 25)
	for i := range sub {
		sub[i] = i
	}
	if _, _, _, err := bf.Separate(sk, sub); err == nil {
		t.Fatal("expected balance validation error")
	}
}

func TestTreeDecompFinderOnKTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(120)
		k := 1 + rng.Intn(3)
		kt := gen.NewKTree(n, k, gen.UnitWeights(), rng)
		sk := graph.NewSkeleton(kt.G)
		tree, err := Build(sk, &TreeDecompFinder{Bags: kt.Decomp.Bags, Parent: kt.Decomp.Parent}, Options{LeafSize: k + 2})
		if err != nil {
			t.Errorf("Build: %v", err)
			return false
		}
		if err := tree.Validate(sk); err != nil {
			t.Errorf("Validate: %v", err)
			return false
		}
		// Separator sizes bounded by bag size k+1.
		for i := range tree.Nodes {
			if len(tree.Nodes[i].S) > k+1 {
				t.Errorf("separator larger than bag: %d > %d", len(tree.Nodes[i].S), k+1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabFinderOnGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	geo := gen.NewGeometric(400, 2, 0.09, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(geo.G)
	tree, err := Build(sk, &SlabFinder{Points: geo.Points, Radius: 0.09}, Options{LeafSize: 8})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Validate(sk); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDisconnectedGraphSplitsWithEmptySeparator(t *testing.T) {
	// Two disjoint paths: the root split must use S = ∅.
	b := graph.NewBuilder(8)
	for i := 0; i < 3; i++ {
		b.AddBoth(i, i+1, 1)
		b.AddBoth(4+i, 5+i, 1)
	}
	g := b.Build()
	sk := graph.NewSkeleton(g)
	tree, err := Build(sk, &BFSFinder{}, Options{LeafSize: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Validate(sk); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tree.Root().S) != 0 {
		t.Fatalf("root separator should be empty, got %v", tree.Root().S)
	}
}

func TestTinyGraphIsLeaf(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddBoth(0, 1, 1)
	sk := graph.NewSkeleton(b.Build())
	tree, err := Build(sk, &BFSFinder{}, Options{LeafSize: 8})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(tree.Nodes) != 1 || !tree.Root().IsLeaf() {
		t.Fatalf("tiny graph should be a single leaf")
	}
	if tree.Height != 0 {
		t.Fatalf("height=%d", tree.Height)
	}
	for v := 0; v < 3; v++ {
		if tree.Level(v) != LevelUndef {
			t.Fatalf("level(%d) should be undefined", v)
		}
	}
}

func TestMaxLeafAndSeparatorSizes(t *testing.T) {
	tree, _, _ := buildGridTree(t, []int{9, 9}, 5)
	if m := tree.MaxLeafSize(); m > 5 {
		t.Fatalf("MaxLeafSize=%d > 5", m)
	}
	if tree.MaxSeparatorSize() < 1 {
		t.Fatal("no separators recorded")
	}
	if len(tree.Leaves()) < 2 {
		t.Fatal("expected multiple leaves")
	}
}

func TestSetHelpers(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		toSet := func(raw []uint8) []int {
			m := map[int]bool{}
			for _, x := range raw {
				m[int(x%32)] = true
			}
			var out []int
			for k := range m {
				out = append(out, k)
			}
			sortInts(out)
			return out
		}
		a, b := toSet(aRaw), toSet(bRaw)
		u, inter, d := union(a, b), intersect(a, b), diff(a, b)
		um := map[int]bool{}
		for _, x := range a {
			um[x] = true
		}
		for _, x := range b {
			um[x] = true
		}
		if len(u) != len(um) {
			return false
		}
		for _, x := range inter {
			if !contains(a, x) || !contains(b, x) {
				return false
			}
		}
		for _, x := range d {
			if !contains(a, x) || contains(b, x) {
				return false
			}
		}
		if len(d)+len(inter) != len(a) {
			return false
		}
		return subset(inter, a) && subset(inter, b) && subset(a, u) && subset(b, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
