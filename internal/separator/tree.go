// Package separator implements separator decomposition trees (Section 2.3 of
// the paper): rooted binary trees whose nodes t carry a vertex set V(t), a
// separator S(t) of the induced subgraph G(t), and the derived boundary sets
// B(t), together with the level and node functions of Section 3 and pluggable
// separator finders for the benchmark graph families.
package separator

import (
	"fmt"
	"math"
	"sort"

	"sepsp/internal/graph"
)

// LevelUndef is the level value of vertices that belong to no separator
// (the paper treats their level as +infinity in all comparisons).
const LevelUndef = math.MaxInt32

// Node is one node of a decomposition tree. Leaves have S == nil and
// Children == [-1, -1].
type Node struct {
	ID       int
	Parent   int // -1 for the root
	Children [2]int
	Level    int // distance from the root

	V []int // vertices of the subgraph G(t), sorted
	S []int // separator of G(t), sorted; nil for leaves
	B []int // boundary vertices, sorted
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Children[0] < 0 }

// Tree is a separator decomposition tree of a graph's undirected skeleton.
// The root is Nodes[0].
type Tree struct {
	Nodes  []Node
	Height int // d_G: maximum root-to-leaf path length in edges

	// VLevel[v] = level(v): the minimum level of a node whose separator
	// contains v, or LevelUndef if v is in no separator.
	VLevel []int
	// VNode[v] = node(v): the node realizing VLevel[v], or, for vertices
	// with undefined level, the unique leaf containing v.
	VNode []int

	n int // number of vertices of the underlying graph
}

// N returns the number of vertices of the decomposed graph.
func (t *Tree) N() int { return t.n }

// FromNodes reconstructs a tree from persisted nodes (deserialization). The
// derived level/node tables are recomputed; structural errors (e.g. a
// vertex in two same-level separators) are reported. Callers that do not
// trust the source should additionally run Validate against the graph's
// skeleton.
func FromNodes(n int, nodes []Node) (*Tree, error) {
	t := &Tree{Nodes: nodes, n: n}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("separator: no nodes")
	}
	if err := t.computeDerived(); err != nil {
		return nil, err
	}
	return t, nil
}

// Root returns the root node.
func (t *Tree) Root() *Node { return &t.Nodes[0] }

// Leaves returns the ids of all leaf nodes.
func (t *Tree) Leaves() []int {
	var ls []int
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			ls = append(ls, i)
		}
	}
	return ls
}

// MaxLeafSize returns the largest |V(t)| over leaves t; the paper's ℓ
// (maximum leaf min-weight diameter) is bounded by MaxLeafSize - 1.
func (t *Tree) MaxLeafSize() int {
	m := 0
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() && len(t.Nodes[i].V) > m {
			m = len(t.Nodes[i].V)
		}
	}
	return m
}

// MaxSeparatorSize returns the largest |S(t)| over internal nodes.
func (t *Tree) MaxSeparatorSize() int {
	m := 0
	for i := range t.Nodes {
		if len(t.Nodes[i].S) > m {
			m = len(t.Nodes[i].S)
		}
	}
	return m
}

// Level returns level(v) (LevelUndef if v lies in no separator).
func (t *Tree) Level(v int) int { return t.VLevel[v] }

// NodeOf returns node(v): the node whose separator realizes level(v), or the
// leaf containing v when level(v) is undefined.
func (t *Tree) NodeOf(v int) int { return t.VNode[v] }

// computeDerived fills Height, VLevel and VNode after the node structure is
// complete. It relies on the uniqueness argument of Section 3: for the
// minimum level, the realizing node is unique, because a vertex can only
// appear under two different nodes of equal level if it belongs to a
// shallower separator.
func (t *Tree) computeDerived() error {
	t.Height = 0
	t.VLevel = make([]int, t.n)
	t.VNode = make([]int, t.n)
	for v := range t.VLevel {
		t.VLevel[v] = LevelUndef
		t.VNode[v] = -1
	}
	// Nodes are appended in construction order with parents before
	// children, so a single pass visits shallower nodes first.
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Level > t.Height {
			t.Height = nd.Level
		}
		for _, v := range nd.S {
			if t.VLevel[v] == LevelUndef {
				t.VLevel[v] = nd.Level
				t.VNode[v] = nd.ID
			} else if t.VLevel[v] == nd.Level && t.VNode[v] != nd.ID {
				return fmt.Errorf("separator: vertex %d in two separators at level %d (nodes %d, %d)",
					v, nd.Level, t.VNode[v], nd.ID)
			}
		}
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if !nd.IsLeaf() {
			continue
		}
		for _, v := range nd.V {
			if t.VLevel[v] == LevelUndef && t.VNode[v] == -1 {
				t.VNode[v] = nd.ID
			}
		}
	}
	for v := 0; v < t.n; v++ {
		if t.VNode[v] == -1 {
			return fmt.Errorf("separator: vertex %d appears in no separator and no leaf", v)
		}
	}
	return nil
}

// Validate checks the structural invariants of the decomposition tree against
// the skeleton sk:
//
//   - V(root) = V; S(t) ⊆ V(t); B(t) = (S(parent) ∪ B(parent)) ∩ V(t).
//   - For internal t with children t1, t2: V(t1) ∪ V(t2) = V(t),
//     V(t1) ∩ V(t2) = S(t), and no skeleton edge joins V(t1)∖S(t) to
//     V(t2)∖S(t)  (S(t) separates).
//   - Proposition 2.1(ii): every skeleton edge leaving V(t) originates in
//     B(t).
func (t *Tree) Validate(sk *graph.Skeleton) error {
	if sk.N() != t.n {
		return fmt.Errorf("separator: skeleton has %d vertices, tree built for %d", sk.N(), t.n)
	}
	root := t.Root()
	if len(root.V) != t.n {
		return fmt.Errorf("separator: root covers %d of %d vertices", len(root.V), t.n)
	}
	if len(root.B) != 0 {
		return fmt.Errorf("separator: root boundary must be empty")
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if !sorted(nd.V) || !sorted(nd.S) || !sorted(nd.B) {
			return fmt.Errorf("separator: node %d has unsorted label sets", nd.ID)
		}
		if !subset(nd.S, nd.V) {
			return fmt.Errorf("separator: node %d: S ⊄ V", nd.ID)
		}
		if !subset(nd.B, nd.V) {
			return fmt.Errorf("separator: node %d: B ⊄ V", nd.ID)
		}
		if nd.IsLeaf() {
			if len(nd.S) != 0 {
				return fmt.Errorf("separator: leaf %d has a separator", nd.ID)
			}
			continue
		}
		c1, c2 := &t.Nodes[nd.Children[0]], &t.Nodes[nd.Children[1]]
		if c1.Parent != nd.ID || c2.Parent != nd.ID {
			return fmt.Errorf("separator: node %d: child parent pointers wrong", nd.ID)
		}
		if c1.Level != nd.Level+1 || c2.Level != nd.Level+1 {
			return fmt.Errorf("separator: node %d: child levels wrong", nd.ID)
		}
		if !equalSets(union(c1.V, c2.V), nd.V) {
			return fmt.Errorf("separator: node %d: V(t1) ∪ V(t2) != V(t)", nd.ID)
		}
		if !equalSets(intersect(c1.V, c2.V), nd.S) {
			return fmt.Errorf("separator: node %d: V(t1) ∩ V(t2) != S(t)", nd.ID)
		}
		// Boundary recurrence.
		sb := union(nd.S, nd.B)
		if !equalSets(intersect(sb, c1.V), c1.B) || !equalSets(intersect(sb, c2.V), c2.B) {
			return fmt.Errorf("separator: node %d: boundary recurrence violated", nd.ID)
		}
		// Separation: no skeleton edge across V(t1)∖S and V(t2)∖S.
		side := make(map[int]int, len(nd.V))
		for _, v := range diff(c1.V, nd.S) {
			side[v] = 1
		}
		for _, v := range diff(c2.V, nd.S) {
			if side[v] == 1 {
				return fmt.Errorf("separator: node %d: vertex %d on both sides", nd.ID, v)
			}
			side[v] = 2
		}
		for _, v := range nd.V {
			sv := side[v]
			if sv == 0 {
				continue
			}
			var bad int = -1
			sk.Adj(v, func(u int) bool {
				su, in := side[u], false
				if su != 0 {
					in = true
				}
				if in && su != sv {
					bad = u
					return false
				}
				return true
			})
			if bad >= 0 {
				return fmt.Errorf("separator: node %d: edge (%d,%d) crosses separator", nd.ID, v, bad)
			}
		}
	}
	// Proposition 2.1(ii) per node.
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		inV := make(map[int]bool, len(nd.V))
		for _, v := range nd.V {
			inV[v] = true
		}
		inB := make(map[int]bool, len(nd.B))
		for _, v := range nd.B {
			inB[v] = true
		}
		for _, v := range nd.V {
			if inB[v] {
				continue
			}
			var bad int = -1
			sk.Adj(v, func(u int) bool {
				if !inV[u] {
					bad = u
					return false
				}
				return true
			})
			if bad >= 0 {
				return fmt.Errorf("separator: node %d: interior vertex %d has edge leaving V(t) to %d",
					nd.ID, v, bad)
			}
		}
	}
	return nil
}

func sorted(s []int) bool { return sort.IntsAreSorted(s) }

func subset(a, b []int) bool { // a ⊆ b, both sorted
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

func union(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func diff(a, b []int) []int { // a ∖ b
	var out []int
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
