package separator

import (
	"math/rand"
	"strings"
	"testing"

	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
)

// badFinder returns deliberately invalid partitions to verify the builder's
// defenses.
type badFinder struct {
	mode string
}

func (bf *badFinder) Separate(sk *graph.Skeleton, sub []int) (sep, s1, s2 []int, err error) {
	switch bf.mode {
	case "crossing":
		// Split vertices by parity, empty separator: edges cross.
		for _, v := range sub {
			if v%2 == 0 {
				s1 = append(s1, v)
			} else {
				s2 = append(s2, v)
			}
		}
		return nil, s1, s2, nil
	case "overlap":
		// sep and s1 share a vertex.
		return []int{sub[0]}, sub[:2], sub[2:], nil
	case "drop":
		// Loses a vertex.
		return nil, sub[:1], sub[2:], nil
	case "noprogress":
		// Everything in the separator: children would equal the input.
		return append([]int(nil), sub...), nil, nil, nil
	default:
		return nil, nil, nil, ErrCannotSeparate
	}
}

func TestBuilderRejectsCrossingCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	grid := gen.NewGrid([]int{6, 6}, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(grid.G)
	_, err := Build(sk, &badFinder{mode: "crossing"}, Options{LeafSize: 4})
	if err == nil || !strings.Contains(err.Error(), "non-separating") {
		t.Fatalf("crossing cut not rejected: %v", err)
	}
}

func TestBuilderRejectsBadPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	grid := gen.NewGrid([]int{6, 6}, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(grid.G)
	for _, mode := range []string{"overlap", "drop"} {
		if _, err := Build(sk, &badFinder{mode: mode}, Options{LeafSize: 4}); err == nil {
			t.Fatalf("mode %q not rejected", mode)
		}
	}
}

func TestBuilderNoProgressBecomesLeaf(t *testing.T) {
	// A finder that "separates" by swallowing everything makes no progress;
	// the builder must terminate with a (big) leaf rather than loop.
	rng := rand.New(rand.NewSource(3))
	grid := gen.NewGrid([]int{5, 5}, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(grid.G)
	tree, err := Build(sk, &badFinder{mode: "noprogress"}, Options{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 || !tree.Root().IsLeaf() {
		t.Fatalf("expected single-leaf tree, got %d nodes", len(tree.Nodes))
	}
	if err := tree.Validate(sk); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderGivingUpFinderBecomesLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	grid := gen.NewGrid([]int{5, 5}, gen.UnitWeights(), rng)
	sk := graph.NewSkeleton(grid.G)
	tree, err := Build(sk, &badFinder{mode: "giveup"}, Options{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root().IsLeaf() {
		t.Fatal("expected the root to close as a leaf")
	}
}

func TestCoordinateFinderRejectsNonLatticeEdge(t *testing.T) {
	// A grid plus one long-range edge: the hyperplane cut is no longer a
	// separator and the builder must refuse loudly instead of producing a
	// silently wrong decomposition.
	rng := rand.New(rand.NewSource(5))
	grid := gen.NewGrid([]int{8, 8}, gen.UnitWeights(), rng)
	b := graph.NewBuilder(grid.G.N())
	grid.G.Edges(func(from, to int, w float64) bool {
		b.AddEdge(from, to, w)
		return true
	})
	b.AddEdge(grid.Index([]int{0, 0}), grid.Index([]int{7, 7}), 1)
	sk := graph.NewSkeleton(b.Build())
	if _, err := Build(sk, &CoordinateFinder{Coord: grid.Coord}, Options{LeafSize: 4}); err == nil {
		t.Fatal("non-lattice edge not detected")
	}
}

func TestFromNodesRoundTrip(t *testing.T) {
	tree, sk, _ := buildGridTree(t, []int{9, 9}, 6)
	rebuilt, err := FromNodes(tree.N(), tree.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Validate(sk); err != nil {
		t.Fatal(err)
	}
	if rebuilt.Height != tree.Height {
		t.Fatalf("height %d vs %d", rebuilt.Height, tree.Height)
	}
	for v := 0; v < tree.N(); v++ {
		if rebuilt.Level(v) != tree.Level(v) || rebuilt.NodeOf(v) != tree.NodeOf(v) {
			t.Fatalf("derived tables differ at %d", v)
		}
	}
	if _, err := FromNodes(5, nil); err == nil {
		t.Fatal("empty node list accepted")
	}
}

func TestPackComponentsBalance(t *testing.T) {
	comps := [][]int{{1, 2, 3, 4, 5}, {6, 7, 8}, {9, 10}, {11}}
	a, b := packComponents(comps)
	if len(a)+len(b) != 11 {
		t.Fatalf("lost vertices: %d+%d", len(a), len(b))
	}
	// Largest-first greedy keeps the max side at most
	// max(ceil(total/2), largest component) = 6.
	if len(a) > 6 || len(b) > 6 {
		t.Fatalf("imbalanced: %d vs %d", len(a), len(b))
	}
}
