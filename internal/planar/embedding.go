// Package planar implements the Section 6 machinery: combinatorial planar
// embeddings (rotation systems) with face enumeration, outerplanar "hammock"
// building blocks, generators for hammock-decomposed planar digraphs, the
// contracted graph G' on attachment vertices with its planar proxy G”
// (4-cycle plus hub per hammock), and the q-faces query pipeline that plugs
// the separator engine into the Frederickson/Pantziou framework.
//
// What the paper obtains from the (intricate) hammock-decomposition
// algorithm, this package obtains from generators that emit the
// decomposition they built — see DESIGN.md's substitution table. Everything
// downstream of the decomposition (per-hammock tables, G', separators of
// G”, the combine step) is implemented faithfully.
package planar

import (
	"fmt"
)

// Embedding is a rotation system: for every vertex, the cyclic order of its
// incident undirected edges. Edges are numbered 0..E-1; each edge has two
// darts (2e for the dart leaving its lower endpoint u, 2e+1 for the dart
// leaving v).
type Embedding struct {
	n     int
	eu    []int   // edge -> endpoint u
	ev    []int   // edge -> endpoint v
	rot   [][]int // rot[v] = cyclic list of darts leaving v
	pos   map[int]int
	faces [][]int // computed by Faces
}

// NewEmbedding creates an embedding with n vertices and no edges.
func NewEmbedding(n int) *Embedding {
	return &Embedding{n: n, rot: make([][]int, n), pos: make(map[int]int)}
}

// NewEmbeddingFromRotations builds an embedding directly from per-vertex
// neighbor lists in rotation order (e.g. the angular orders of a Delaunay
// triangulation). Each undirected edge {u, v} must appear exactly once in
// u's list and once in v's.
func NewEmbeddingFromRotations(rots [][]int) *Embedding {
	em := NewEmbedding(len(rots))
	em.setRotations(rots)
	return em
}

// N returns the vertex count; E the undirected edge count.
func (em *Embedding) N() int { return em.n }

// E returns the number of undirected edges.
func (em *Embedding) E() int { return len(em.eu) }

// AddEdge appends an undirected edge {u, v} at the end of both rotation
// lists and returns its id. Callers build precise embeddings by adding edges
// in rotation order around each vertex (the order of AddEdge calls is the
// rotation order).
func (em *Embedding) AddEdge(u, v int) int {
	if u < 0 || u >= em.n || v < 0 || v >= em.n || u == v {
		panic(fmt.Sprintf("planar: bad edge (%d,%d)", u, v))
	}
	id := len(em.eu)
	em.eu = append(em.eu, u)
	em.ev = append(em.ev, v)
	du, dv := 2*id, 2*id+1
	em.pos[du] = len(em.rot[u])
	em.rot[u] = append(em.rot[u], du)
	em.pos[dv] = len(em.rot[v])
	em.rot[v] = append(em.rot[v], dv)
	em.faces = nil
	return id
}

// dartTail returns the vertex a dart leaves; dartHead the vertex it enters.
func (em *Embedding) dartTail(d int) int {
	if d%2 == 0 {
		return em.eu[d/2]
	}
	return em.ev[d/2]
}

func (em *Embedding) dartHead(d int) int {
	if d%2 == 0 {
		return em.ev[d/2]
	}
	return em.eu[d/2]
}

// twin returns the opposite dart of the same edge.
func twin(d int) int { return d ^ 1 }

// Faces enumerates the faces of the embedding by the standard face-tracing
// rule: from dart d (u→v), the next dart is the successor of twin(d) in the
// rotation at v. Each face is returned as the cyclic list of vertices on its
// boundary walk. The result is cached.
func (em *Embedding) Faces() [][]int {
	if em.faces != nil {
		return em.faces
	}
	next := func(d int) int {
		t := twin(d)
		v := em.dartTail(t)
		i := em.pos[t]
		return em.rot[v][(i+1)%len(em.rot[v])]
	}
	seen := make([]bool, 2*len(em.eu))
	var faces [][]int
	for d0 := range seen {
		if seen[d0] {
			continue
		}
		var walk []int
		d := d0
		for !seen[d] {
			seen[d] = true
			walk = append(walk, em.dartTail(d))
			d = next(d)
		}
		faces = append(faces, walk)
	}
	em.faces = faces
	return faces
}

// EulerCheck verifies V - E + F = 2 for a connected embedding (the
// certificate that the rotation system describes a planar (genus-0)
// embedding). components must be the number of connected components; the
// generalized formula is V - E + F = 1 + components.
func (em *Embedding) EulerCheck(components int) error {
	f := len(em.Faces())
	lhs := em.n - em.E() + f
	if lhs != 1+components {
		return fmt.Errorf("planar: Euler check failed: V-E+F = %d-%d+%d = %d, want %d (genus > 0 or bad rotation)",
			em.n, em.E(), f, lhs, 1+components)
	}
	return nil
}

// FacesContaining returns, for each vertex, the set of face indices whose
// boundary walk visits it.
func (em *Embedding) FacesContaining() [][]int {
	faces := em.Faces()
	out := make([][]int, em.n)
	for fi, walk := range faces {
		last := -1
		for _, v := range walk {
			if v != last { // avoid trivial duplicates from consecutive visits
				out[v] = append(out[v], fi)
			}
			last = v
		}
	}
	return out
}

// CoverFaceCount returns the minimum known count of faces needed so every
// vertex lies on at least one of them, computed greedily (set cover
// heuristic — the exact minimum is NP-complete, as Frederickson notes; the
// paper likewise uses an approximation).
func (em *Embedding) CoverFaceCount() int {
	faces := em.Faces()
	uncovered := make(map[int]bool, em.n)
	for v := 0; v < em.n; v++ {
		if len(em.rot[v]) > 0 {
			uncovered[v] = true
		}
	}
	count := 0
	for len(uncovered) > 0 {
		best, bestGain := -1, 0
		for fi, walk := range faces {
			gain := 0
			for _, v := range walk {
				if uncovered[v] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = fi, gain
			}
		}
		if best < 0 {
			break
		}
		for _, v := range faces[best] {
			delete(uncovered, v)
		}
		count++
	}
	return count
}
