package planar

import (
	"fmt"
	"math/rand"

	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
)

// Hammock is one outerplanar piece of a hammock decomposition: a set of
// vertices attached to the rest of the graph through (at most) four
// attachment vertices, as in Frederickson's decomposition.
type Hammock struct {
	// Vertices of the hammock, global ids, sorted.
	Vertices []int
	// Attach are the attachment vertices in NW, SW, NE, SE order; every
	// edge leaving the hammock is incident to one of them.
	Attach [4]int
}

// HammockGraph is a digraph together with its hammock decomposition. The
// generator emits the decomposition it builds, standing in for the paper's
// hammock-decomposition computation (see DESIGN.md).
type HammockGraph struct {
	G        *graph.Digraph
	Hammocks []Hammock
	// HammockOf[v] = index of the hammock containing v.
	HammockOf []int
	// Embedding is the rotation system of the undirected skeleton, used to
	// certify planarity and count faces.
	Embedding *Embedding
}

// Validate checks the decomposition invariants: hammocks partition V, and
// every inter-hammock edge joins attachment vertices.
func (hg *HammockGraph) Validate() error {
	seen := make([]bool, hg.G.N())
	for hi, h := range hg.Hammocks {
		for _, v := range h.Vertices {
			if seen[v] {
				return fmt.Errorf("planar: vertex %d in two hammocks", v)
			}
			seen[v] = true
			if hg.HammockOf[v] != hi {
				return fmt.Errorf("planar: HammockOf[%d] = %d, want %d", v, hg.HammockOf[v], hi)
			}
		}
		for _, a := range h.Attach {
			if hg.HammockOf[a] != hi {
				return fmt.Errorf("planar: attachment %d not inside its hammock", a)
			}
		}
	}
	for _, v := range seen {
		if !v {
			return fmt.Errorf("planar: hammocks do not cover all vertices")
		}
	}
	var err error
	hg.G.Edges(func(from, to int, _ float64) bool {
		hf, ht := hg.HammockOf[from], hg.HammockOf[to]
		if hf != ht {
			if !isAttachment(hg.Hammocks[hf], from) || !isAttachment(hg.Hammocks[ht], to) {
				err = fmt.Errorf("planar: inter-hammock edge (%d,%d) not between attachments", from, to)
				return false
			}
		}
		return true
	})
	return err
}

func isAttachment(h Hammock, v int) bool {
	for _, a := range h.Attach {
		if a == v {
			return true
		}
	}
	return false
}

// ChainShape selects the global arrangement of the generated hammocks.
type ChainShape int

const (
	// Path arranges the hammocks in an open chain.
	Path ChainShape = iota
	// Ring closes the chain into a cycle (the smallest arrangement whose
	// face structure genuinely depends on the hammock count).
	Ring
)

// NewHammockChain generates a planar digraph made of q ladder hammocks
// (2×width outerplanar grids) glued corner-to-corner in a path or ring.
// Edge weights come from wf (independent per direction). The number of
// hammocks q plays the role of the paper's q (all vertices lie on O(q)
// faces of the emitted embedding).
func NewHammockChain(q, width int, shape ChainShape, wf gen.WeightFn, rng *rand.Rand) *HammockGraph {
	if q < 1 || width < 2 {
		panic("planar: need q >= 1, width >= 2")
	}
	if shape == Ring && q < 2 {
		panic("planar: ring needs q >= 2")
	}
	perH := 2 * width
	n := q * perH
	b := graph.NewBuilder(n)
	em := NewEmbedding(n)
	hg := &HammockGraph{Hammocks: make([]Hammock, q), HammockOf: make([]int, n), Embedding: em}

	vid := func(h, row, col int) int { return h*perH + row*width + col }
	addBoth := func(u, v int) {
		b.AddEdge(u, v, wf(rng, u, v))
		b.AddEdge(v, u, wf(rng, v, u))
	}
	for h := 0; h < q; h++ {
		var verts []int
		for r := 0; r < 2; r++ {
			for c := 0; c < width; c++ {
				v := vid(h, r, c)
				verts = append(verts, v)
				hg.HammockOf[v] = h
			}
		}
		// Ladder edges: rails and rungs.
		for c := 0; c+1 < width; c++ {
			addBoth(vid(h, 0, c), vid(h, 0, c+1))
			addBoth(vid(h, 1, c), vid(h, 1, c+1))
		}
		for c := 0; c < width; c++ {
			addBoth(vid(h, 0, c), vid(h, 1, c))
		}
		hg.Hammocks[h] = Hammock{
			Vertices: verts,
			Attach: [4]int{
				vid(h, 0, 0),       // NW
				vid(h, 1, 0),       // SW
				vid(h, 0, width-1), // NE
				vid(h, 1, width-1), // SE
			},
		}
	}
	links := q - 1
	if shape == Ring {
		links = q
	}
	for h := 0; h < links; h++ {
		next := (h + 1) % q
		addBoth(vid(h, 0, width-1), vid(next, 0, 0)) // NE -> NW
		addBoth(vid(h, 1, width-1), vid(next, 1, 0)) // SE -> SW
	}
	hg.G = b.Build()
	buildLadderEmbedding(em, q, width, shape, vid)
	return hg
}

// buildLadderEmbedding constructs the rotation system of the chained-ladder
// skeleton. Rotation orders are given clockwise assuming row 0 on top,
// columns increasing to the right, hammocks left to right.
func buildLadderEmbedding(em *Embedding, q, width int, shape ChainShape, vid func(h, row, col int) int) {
	// Collect undirected neighbor lists in clockwise rotation order:
	// top row: west, north-of-nothing, east, south  ->  (W, E, S)
	// bottom row: (W, N, E) up to cyclic rotation.
	n := em.N()
	rots := make([][]int, n)
	west := func(h, r, c int) (int, bool) {
		if c > 0 {
			return vid(h, r, c-1), true
		}
		if h > 0 || shape == Ring {
			return vid((h-1+q)%q, r, width-1), h > 0 || shape == Ring
		}
		return 0, false
	}
	east := func(h, r, c int) (int, bool) {
		if c+1 < width {
			return vid(h, r, c+1), true
		}
		if h+1 < q || shape == Ring {
			return vid((h+1)%q, r, 0), true
		}
		return 0, false
	}
	for h := 0; h < q; h++ {
		for c := 0; c < width; c++ {
			vT := vid(h, 0, c)
			vB := vid(h, 1, c)
			// Top vertex, clockwise: W, E, S.
			if u, ok := west(h, 0, c); ok {
				rots[vT] = append(rots[vT], u)
			}
			if u, ok := east(h, 0, c); ok {
				rots[vT] = append(rots[vT], u)
			}
			rots[vT] = append(rots[vT], vB)
			// Bottom vertex, clockwise: E, W, N -> consistent orientation:
			// clockwise around a bottom vertex is E, W has to interleave
			// with N as N, W? Use counterclockwise-consistent order: N, E
			// then W reversed — the face-tracing only needs a coherent
			// orientation, so mirror the top: E, W, N.
			if u, ok := east(h, 1, c); ok {
				rots[vB] = append(rots[vB], u)
			}
			if u, ok := west(h, 1, c); ok {
				rots[vB] = append(rots[vB], u)
			}
			rots[vB] = append(rots[vB], vT)
		}
	}
	// Emit edges so that each vertex's AddEdge order equals its rotation
	// order: process vertices and append darts lazily. AddEdge appends to
	// both endpoints, so emit each undirected edge once, ordered by a
	// global pass that respects per-vertex rotation: we instead insert
	// per-vertex orders directly.
	em.setRotations(rots)
}

// setRotations installs explicit rotation lists given as neighbor ids. Each
// undirected edge {u,v} must appear exactly once in u's list and once in
// v's.
func (em *Embedding) setRotations(rots [][]int) {
	type key struct{ a, b int }
	ids := make(map[key]int)
	for u := range rots {
		for _, v := range rots[u] {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			k := key{a, b}
			if _, ok := ids[k]; !ok {
				id := len(em.eu)
				em.eu = append(em.eu, a)
				em.ev = append(em.ev, b)
				ids[k] = id
			}
		}
	}
	em.rot = make([][]int, em.n)
	em.pos = make(map[int]int)
	for u := range rots {
		for _, v := range rots[u] {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			id := ids[key{a, b}]
			d := 2 * id
			if u != a {
				d = 2*id + 1
			}
			em.pos[d] = len(em.rot[u])
			em.rot[u] = append(em.rot[u], d)
		}
	}
	em.faces = nil
}
