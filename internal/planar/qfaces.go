package planar

import (
	"fmt"
	"math"

	"sepsp/internal/baseline"
	"sepsp/internal/core"
	"sepsp/internal/graph"
	"sepsp/internal/matrix"
	"sepsp/internal/pram"
	"sepsp/internal/separator"
)

// QFaceEngine is the Section 6 pipeline: shortest paths on planar digraphs
// whose vertices lie on O(q) faces, via a hammock decomposition.
//
// Preprocessing:
//  1. all-pairs distances inside each hammock (Johnson on the O(n/q)-sized
//     pieces — playing the role of Frederickson's per-hammock compact
//     routing tables);
//  2. the contracted graph G' on the 4q attachment vertices: a complete K4
//     of within-hammock attachment distances per hammock, plus the original
//     inter-hammock edges;
//  3. a separator decomposition of G' obtained through the planar proxy G”
//     (ProxyFinder), and the separator engine (core.Engine) on G';
//  4. all-pairs distances in G' by running the engine from each of the 4q
//     attachment vertices — the step where this paper improves the
//     Pantziou et al. bounds.
//
// Queries combine per-hammock tables with G' distances.
type QFaceEngine struct {
	hg     *HammockGraph
	local  []*matrix.Dense // per-hammock APSP over Vertices (local indexing)
	lidx   []map[int]int   // per-hammock vertex -> local index
	attIdx []int           // global attachment vertex -> G' vertex id (-1 otherwise)
	atts   []int           // G' vertex id -> global vertex id
	gPrime *graph.Digraph
	engine *core.Engine
	dPrime *matrix.Dense // all-pairs on G'
}

// NewQFaceEngine preprocesses a hammock-decomposed digraph.
func NewQFaceEngine(hg *HammockGraph, ex *pram.Executor, st *pram.Stats) (*QFaceEngine, error) {
	if ex == nil {
		ex = pram.Sequential
	}
	if err := hg.Validate(); err != nil {
		return nil, err
	}
	q := len(hg.Hammocks)
	e := &QFaceEngine{
		hg:     hg,
		local:  make([]*matrix.Dense, q),
		lidx:   make([]map[int]int, q),
		attIdx: make([]int, hg.G.N()),
	}
	for i := range e.attIdx {
		e.attIdx[i] = -1
	}
	// Step 1: per-hammock APSP, in parallel over hammocks. Hammocks can be
	// Θ(n/q)-sized, so the cubic Floyd-Warshall would dominate everything;
	// Johnson (one Bellman-Ford for potentials + one Dijkstra per source)
	// gives the ˜O(size²) total that Frederickson's outerplanar routing
	// tables provide in the paper, while still supporting negative weights.
	errs := make([]error, q)
	ex.For(q, func(h int) {
		hm := hg.Hammocks[h]
		sub, _ := hg.G.Induced(hm.Vertices)
		idx := make(map[int]int, len(hm.Vertices))
		srcs := make([]int, len(hm.Vertices))
		for i, v := range hm.Vertices {
			idx[v] = i
			srcs[i] = i
		}
		local := &pram.Stats{}
		rows, err := baseline.Johnson(sub, srcs, pram.Sequential, local)
		st.AddWork(local.Work())
		if err != nil {
			errs[h] = fmt.Errorf("planar: negative cycle inside hammock %d", h)
			return
		}
		d := matrix.New(len(hm.Vertices), len(hm.Vertices))
		for i, row := range rows {
			copy(d.A[i*d.C:(i+1)*d.C], row)
		}
		e.local[h] = d
		e.lidx[h] = idx
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Step 2: build G' on attachment vertices.
	for _, hm := range hg.Hammocks {
		for _, a := range hm.Attach {
			if e.attIdx[a] == -1 {
				e.attIdx[a] = len(e.atts)
				e.atts = append(e.atts, a)
			}
		}
	}
	gb := graph.NewBuilder(len(e.atts))
	for h, hm := range hg.Hammocks {
		for _, a := range hm.Attach {
			for _, b := range hm.Attach {
				if a == b {
					continue
				}
				w := e.local[h].At(e.lidx[h][a], e.lidx[h][b])
				if !math.IsInf(w, 1) {
					gb.AddEdge(e.attIdx[a], e.attIdx[b], w)
				}
			}
		}
	}
	hg.G.Edges(func(from, to int, w float64) bool {
		if hg.HammockOf[from] != hg.HammockOf[to] {
			gb.AddEdge(e.attIdx[from], e.attIdx[to], w)
		}
		return true
	})
	e.gPrime = gb.Build()
	// Step 3: separator decomposition of G' through the planar proxy G''.
	sk := graph.NewSkeleton(e.gPrime)
	hammockOfPrime := make([]int, len(e.atts))
	for i, a := range e.atts {
		hammockOfPrime[i] = hg.HammockOf[a]
	}
	finder := &ProxyFinder{HammockOf: hammockOfPrime, NumHammocks: q}
	tree, err := separator.Build(sk, finder, separator.Options{LeafSize: 8})
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(e.gPrime, tree, core.Config{Ex: ex, PrepStats: st})
	if err != nil {
		return nil, err
	}
	e.engine = eng
	// Step 4: all-pairs on G' via 4q engine queries.
	np := len(e.atts)
	e.dPrime = matrix.New(np, np)
	rows := make([][]float64, np)
	ex.For(np, func(i int) {
		perSrc := &pram.Stats{}
		rows[i] = eng.SSSP(i, perSrc)
		st.AddWork(perSrc.Work())
	})
	for i, row := range rows {
		for j, w := range row {
			e.dPrime.Set(i, j, w)
		}
	}
	return e, nil
}

// GPrime returns the contracted graph on attachment vertices.
func (e *QFaceEngine) GPrime() *graph.Digraph { return e.gPrime }

// Engine returns the separator engine running on G'.
func (e *QFaceEngine) Engine() *core.Engine { return e.engine }

// Dist returns dist_G(u, v), combining hammock-local paths with attachment
// routing; O(1) table lookups per query (16 attachment pairs).
func (e *QFaceEngine) Dist(u, v int) float64 {
	hu, hv := e.hg.HammockOf[u], e.hg.HammockOf[v]
	best := math.Inf(1)
	if hu == hv {
		best = e.local[hu].At(e.lidx[hu][u], e.lidx[hu][v])
	}
	for _, a := range e.hg.Hammocks[hu].Attach {
		du := e.local[hu].At(e.lidx[hu][u], e.lidx[hu][a])
		if math.IsInf(du, 1) {
			continue
		}
		for _, b := range e.hg.Hammocks[hv].Attach {
			dv := e.local[hv].At(e.lidx[hv][b], e.lidx[hv][v])
			if math.IsInf(dv, 1) {
				continue
			}
			if d := du + e.dPrime.At(e.attIdx[a], e.attIdx[b]) + dv; d < best {
				best = d
			}
		}
	}
	return best
}

// SSSPTree returns distances from u plus a shortest-path tree in the
// original graph (parent pointers over tight edges), the "shortest-path
// trees from s sources" output of Section 6.
func (e *QFaceEngine) SSSPTree(u int, st *pram.Stats) ([]float64, []int) {
	dist := e.SSSP(u, st)
	return dist, core.TightTree(e.hg.G, u, dist)
}

// SSSP returns distances from u to every vertex in O(n) work after
// preprocessing: 4 lookups to reach the attachments, precomputed G' rows to
// reach every other attachment, and per-hammock tables to fan out.
func (e *QFaceEngine) SSSP(u int, st *pram.Stats) []float64 {
	n := e.hg.G.N()
	hu := e.hg.HammockOf[u]
	// Arrival cost at every attachment vertex.
	arr := make([]float64, len(e.atts))
	for i := range arr {
		arr[i] = math.Inf(1)
	}
	for _, a := range e.hg.Hammocks[hu].Attach {
		du := e.local[hu].At(e.lidx[hu][u], e.lidx[hu][a])
		if math.IsInf(du, 1) {
			continue
		}
		ai := e.attIdx[a]
		for bi := range arr {
			if d := du + e.dPrime.At(ai, bi); d < arr[bi] {
				arr[bi] = d
			}
		}
	}
	st.AddWork(int64(4 * len(e.atts)))
	dist := make([]float64, n)
	for v := 0; v < n; v++ {
		hv := e.hg.HammockOf[v]
		best := math.Inf(1)
		if hv == hu {
			best = e.local[hu].At(e.lidx[hu][u], e.lidx[hu][v])
		}
		for _, b := range e.hg.Hammocks[hv].Attach {
			ab := arr[e.attIdx[b]]
			if math.IsInf(ab, 1) {
				continue
			}
			if d := ab + e.local[hv].At(e.lidx[hv][b], e.lidx[hv][v]); d < best {
				best = d
			}
		}
		dist[v] = best
	}
	st.AddWork(int64(4 * n))
	return dist
}
