package planar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/baseline"
	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
	"sepsp/internal/pram"
	"sepsp/internal/separator"
)

func TestEmbeddingSquare(t *testing.T) {
	// A single quadrilateral: 4 vertices, 4 edges, 2 faces.
	em := NewEmbedding(4)
	rots := [][]int{
		{1, 3}, // 0: clockwise E then S (square 0-1-2-3)
		{2, 0},
		{3, 1},
		{0, 2},
	}
	em.setRotations(rots)
	if em.E() != 4 {
		t.Fatalf("E=%d", em.E())
	}
	if got := len(em.Faces()); got != 2 {
		t.Fatalf("faces=%d want 2", got)
	}
	if err := em.EulerCheck(1); err != nil {
		t.Fatal(err)
	}
}

func TestHammockChainEmbeddingIsPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []ChainShape{Path, Ring} {
		for _, q := range []int{2, 3, 7} {
			hg := NewHammockChain(q, 4, shape, gen.UnitWeights(), rng)
			if err := hg.Validate(); err != nil {
				t.Fatalf("shape=%v q=%d: %v", shape, q, err)
			}
			if err := hg.Embedding.EulerCheck(1); err != nil {
				t.Fatalf("shape=%v q=%d: %v", shape, q, err)
			}
		}
	}
}

func TestHammockChainFaceCountGrowsWithQ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f3 := len(NewHammockChain(3, 4, Ring, gen.UnitWeights(), rng).Embedding.Faces())
	f9 := len(NewHammockChain(9, 4, Ring, gen.UnitWeights(), rng).Embedding.Faces())
	if f9 <= f3 {
		t.Fatalf("faces: q=3 -> %d, q=9 -> %d", f3, f9)
	}
}

func TestCoverFaceCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hg := NewHammockChain(4, 3, Path, gen.UnitWeights(), rng)
	c := hg.Embedding.CoverFaceCount()
	if c < 1 || c > len(hg.Embedding.Faces()) {
		t.Fatalf("cover count %d out of range", c)
	}
	// For a ladder chain, the single outer face touches every vertex.
	if c != 1 {
		t.Fatalf("ladder chain outer face covers everything; got %d", c)
	}
}

func TestQFaceEngineMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 2 + rng.Intn(6)
		width := 2 + rng.Intn(4)
		shape := Path
		if rng.Intn(2) == 0 && q >= 2 {
			shape = Ring
		}
		hg := NewHammockChain(q, width, shape, gen.UniformWeights(0.5, 4), rng)
		eng, err := NewQFaceEngine(hg, nil, nil)
		if err != nil {
			t.Errorf("NewQFaceEngine: %v", err)
			return false
		}
		for trial := 0; trial < 3; trial++ {
			u := rng.Intn(hg.G.N())
			want, err := baseline.BellmanFord(hg.G, u, nil)
			if err != nil {
				t.Errorf("BF: %v", err)
				return false
			}
			got := eng.SSSP(u, nil)
			for v := range want {
				if !almost(got[v], want[v]) {
					t.Errorf("seed=%d u=%d v=%d: qface %v bf %v", seed, u, v, got[v], want[v])
					return false
				}
				if d := eng.Dist(u, v); !almost(d, want[v]) {
					t.Errorf("seed=%d Dist(%d,%d)=%v want %v", seed, u, v, d, want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func almost(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestQFaceEngineNegativeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	hg := NewHammockChain(4, 3, Ring, gen.UniformWeights(0, 3), rng)
	shifted, _ := gen.PotentialShift(hg.G, 5, rng)
	hg2 := &HammockGraph{G: shifted, Hammocks: hg.Hammocks, HammockOf: hg.HammockOf, Embedding: hg.Embedding}
	eng, err := NewQFaceEngine(hg2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := 5
	want, err := baseline.BellmanFord(shifted, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := eng.SSSP(u, nil)
	for v := range want {
		if !almost(got[v], want[v]) {
			t.Fatalf("v=%d: %v vs %v", v, got[v], want[v])
		}
	}
}

func TestQFaceEngineDetectsNegativeCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	hg := NewHammockChain(3, 3, Ring, gen.UniformWeights(0.5, 1), rng)
	// Make the whole ring negative by planting a strongly negative
	// connector edge cycle: add antiparallel negative edges inside one
	// hammock.
	b := graph.NewBuilder(hg.G.N())
	hg.G.Edges(func(from, to int, w float64) bool {
		b.AddEdge(from, to, w)
		return true
	})
	v0 := hg.Hammocks[0].Vertices[0]
	v1 := hg.Hammocks[0].Vertices[1]
	b.AddEdge(v0, v1, -3)
	b.AddEdge(v1, v0, 1)
	hg2 := &HammockGraph{G: b.Build(), Hammocks: hg.Hammocks, HammockOf: hg.HammockOf, Embedding: hg.Embedding}
	if _, err := NewQFaceEngine(hg2, nil, nil); err == nil {
		t.Fatal("expected negative-cycle error")
	}
}

func TestQFaceEngineValidatesDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hg := NewHammockChain(3, 3, Path, gen.UnitWeights(), rng)
	// Corrupt: connect two hammock interiors directly.
	b := graph.NewBuilder(hg.G.N())
	hg.G.Edges(func(from, to int, w float64) bool {
		b.AddEdge(from, to, w)
		return true
	})
	// interior vertices: column 1 of hammocks 0 and 2
	b.AddEdge(hg.Hammocks[0].Vertices[1], hg.Hammocks[2].Vertices[1], 1)
	hg2 := &HammockGraph{G: b.Build(), Hammocks: hg.Hammocks, HammockOf: hg.HammockOf, Embedding: hg.Embedding}
	if _, err := NewQFaceEngine(hg2, nil, nil); err == nil {
		t.Fatal("expected decomposition validation error")
	}
}

func TestProxyFinderProducesValidTree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	hg := NewHammockChain(12, 3, Ring, gen.UniformWeights(1, 2), rng)
	eng, err := NewQFaceEngine(hg, pram.NewExecutor(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	gp := eng.GPrime()
	sk := graph.NewSkeleton(gp)
	hammockOfPrime := make([]int, gp.N())
	for i, a := range eng.atts {
		hammockOfPrime[i] = hg.HammockOf[a]
	}
	tree, err := separator.Build(sk, &ProxyFinder{HammockOf: hammockOfPrime, NumHammocks: len(hg.Hammocks)}, separator.Options{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(sk); err != nil {
		t.Fatalf("proxy tree invalid: %v", err)
	}
}

func TestGPrimeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	hg := NewHammockChain(10, 6, Path, gen.UnitWeights(), rng)
	eng, err := NewQFaceEngine(hg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.GPrime().N() != 40 { // 4 attachments × 10 hammocks
		t.Fatalf("|V(G')|=%d", eng.GPrime().N())
	}
	// O(q) edges: 12 within-K4 per hammock + 4 connectors per link.
	if eng.GPrime().M() > 10*12+2*9*2 {
		t.Fatalf("|E(G')|=%d too large", eng.GPrime().M())
	}
}
