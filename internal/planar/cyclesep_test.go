package planar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/baseline"
	"sepsp/internal/core"
	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
	"sepsp/internal/separator"
)

func TestGridEmbeddingIsPlanar(t *testing.T) {
	for _, wh := range [][2]int{{2, 2}, {5, 3}, {9, 9}, {1, 7}} {
		em := GridEmbedding(wh[0], wh[1])
		if err := em.EulerCheck(1); err != nil {
			t.Fatalf("%v: %v", wh, err)
		}
		// (w-1)(h-1) inner faces + outer.
		want := (wh[0]-1)*(wh[1]-1) + 1
		if got := len(em.Faces()); got != want {
			t.Fatalf("%v: faces=%d want %d", wh, got, want)
		}
	}
}

func TestCycleFinderOnGrids(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 3+rng.Intn(10), 3+rng.Intn(10)
		grid := gen.NewGrid([]int{w, h}, gen.UniformWeights(0.5, 2), rng)
		em := GridEmbedding(w, h)
		sk := graph.NewSkeleton(grid.G)
		tree, err := separator.Build(sk, &CycleFinder{Em: em}, separator.Options{LeafSize: 4})
		if err != nil {
			t.Errorf("seed=%d: Build: %v", seed, err)
			return false
		}
		if err := tree.Validate(sk); err != nil {
			t.Errorf("seed=%d: Validate: %v", seed, err)
			return false
		}
		eng, err := core.NewEngine(grid.G, tree, core.Config{})
		if err != nil {
			t.Errorf("seed=%d: NewEngine: %v", seed, err)
			return false
		}
		src := rng.Intn(grid.G.N())
		want, _ := baseline.BellmanFord(grid.G, src, nil)
		got := eng.SSSP(src, nil)
		for v := range want {
			if got[v] != want[v] {
				diff := got[v] - want[v]
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-9*(1+want[v]) {
					t.Errorf("seed=%d v=%d: %v want %v", seed, v, got[v], want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleFinderSeparatorQuality(t *testing.T) {
	// On the square grid, fundamental cycles of BFS non-tree edges give
	// O(√n)-ish separators; check the realized tree is not degenerate.
	grid := gen.NewGrid([]int{16, 16}, gen.UnitWeights(), rand.New(rand.NewSource(1)))
	em := GridEmbedding(16, 16)
	sk := graph.NewSkeleton(grid.G)
	tree, err := separator.Build(sk, &CycleFinder{Em: em}, separator.Options{LeafSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(sk); err != nil {
		t.Fatal(err)
	}
	if tree.Height > 40 {
		t.Fatalf("degenerate tree height %d", tree.Height)
	}
	if tree.MaxSeparatorSize() > 64 { // 4·√256
		t.Fatalf("separator %d too large for n=256", tree.MaxSeparatorSize())
	}
}

func TestCycleFinderOnHammockChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hg := NewHammockChain(6, 4, Ring, gen.UniformWeights(0.5, 2), rng)
	sk := graph.NewSkeleton(hg.G)
	tree, err := separator.Build(sk, &CycleFinder{Em: hg.Embedding}, separator.Options{LeafSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(sk); err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(hg.G, tree, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := baseline.BellmanFord(hg.G, 3, nil)
	got := eng.SSSP(3, nil)
	for v := range want {
		d := got[v] - want[v]
		if d < 0 {
			d = -d
		}
		if d > 1e-9*(1+want[v]) {
			t.Fatalf("v=%d: %v want %v", v, got[v], want[v])
		}
	}
}

func TestFundamentalCycle(t *testing.T) {
	// Path tree 0-1-2-3-4 plus edge (0,4): cycle must be 0..4.
	parent := []int{-1, 0, 1, 2, 3}
	depth := []int{0, 1, 2, 3, 4}
	cyc := fundamentalCycle(4, 0, parent, depth)
	if len(cyc) != 5 {
		t.Fatalf("cycle=%v", cyc)
	}
	// Balanced LCA case: star paths 0-1-2 and 0-3-4, edge (2,4).
	parent = []int{-1, 0, 1, 0, 3}
	depth = []int{0, 1, 2, 1, 2}
	cyc = fundamentalCycle(2, 4, parent, depth)
	if len(cyc) != 5 || cyc[2] != 0 {
		t.Fatalf("cycle=%v (LCA should be in the middle)", cyc)
	}
}
