package planar

import (
	"sort"

	"sepsp/internal/graph"
	"sepsp/internal/separator"
)

// CycleFinder separates embedded planar graphs with fundamental-cycle
// separators: given the rotation system of the graph, it builds a BFS
// spanning tree of the current subgraph, tries the fundamental cycles of a
// sample of non-tree edges, and picks the cycle whose removal splits the
// faces — hence the vertices — most evenly. This is the cycle-separator
// half of the Lipton–Tarjan construction (the paper's planar graphs are
// decomposed by simple-cycle separators in Lingas's related work, and by
// Gazit–Miller in Section 6); the triangulation step that guarantees
// O(√n) cycles on every input is deliberately omitted — on inputs where no
// sampled cycle is balanced the finder falls back to a BFS-level cut, and
// the tree builder validates every cut regardless.
type CycleFinder struct {
	// Em is the rotation system of the FULL graph; the finder restricts it
	// to each subgraph.
	Em *Embedding
	// Balance is the maximum side fraction (default ¾).
	Balance float64
	// MaxCandidates bounds how many fundamental cycles are scored per cut
	// (default 32).
	MaxCandidates int
}

// Separate implements separator.Finder.
func (cf *CycleFinder) Separate(sk *graph.Skeleton, sub []int) (sep, s1, s2 []int, err error) {
	balance := cf.Balance
	if balance == 0 {
		balance = 0.75
	}
	maxCand := cf.MaxCandidates
	if maxCand == 0 {
		maxCand = 32
	}
	if len(sub) < 4 {
		return nil, nil, nil, separator.ErrCannotSeparate
	}
	// Restrict the rotation system to sub (order-preserving), local ids.
	local := make(map[int]int, len(sub))
	for i, v := range sub {
		local[v] = i
	}
	rots := make([][]int, len(sub))
	for i, v := range sub {
		for _, d := range cf.Em.rot[v] {
			u := cf.Em.dartHead(d)
			if j, ok := local[u]; ok {
				rots[i] = append(rots[i], j)
			}
		}
	}
	em := NewEmbedding(len(sub))
	em.setRotations(rots)

	// BFS spanning tree over the restricted embedding.
	n := len(sub)
	parent := make([]int, n)
	depth := make([]int, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	queue := []int{0}
	order := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range rots[v] {
			if parent[u] == -2 {
				parent[u] = v
				depth[u] = depth[v] + 1
				queue = append(queue, u)
				order = append(order, u)
			}
		}
	}
	if len(order) != n {
		return nil, nil, nil, separator.ErrCannotSeparate // disconnected (builder should have split)
	}
	treeEdge := make(map[[2]int]bool, n-1)
	for v := 1; v < n; v++ {
		treeEdge[edgeKey(v, parent[v])] = true
	}
	// Face structure of the restricted embedding.
	faces := em.Faces()
	faceOfDart := make([]int, 2*em.E())
	{
		// Re-trace faces to record dart -> face (Faces caches walks only).
		next := func(d int) int {
			t := twin(d)
			v := em.dartTail(t)
			i := em.pos[t]
			return em.rot[v][(i+1)%len(em.rot[v])]
		}
		seen := make([]bool, 2*em.E())
		fi := 0
		for d0 := range seen {
			if seen[d0] {
				continue
			}
			d := d0
			for !seen[d] {
				seen[d] = true
				faceOfDart[d] = fi
				d = next(d)
			}
			fi++
		}
		if fi != len(faces) {
			return nil, nil, nil, separator.ErrCannotSeparate
		}
	}

	// Candidate non-tree edges, sampled evenly.
	var nonTree []int // edge ids
	for e := 0; e < em.E(); e++ {
		if !treeEdge[edgeKey(em.eu[e], em.ev[e])] {
			nonTree = append(nonTree, e)
		}
	}
	if len(nonTree) == 0 {
		return nil, nil, nil, separator.ErrCannotSeparate // a tree: no cycles
	}
	stride := 1
	if len(nonTree) > maxCand {
		stride = len(nonTree) / maxCand
	}
	limit := int(balance * float64(n))
	bestScore := n + 1
	var bestSep, bestS1, bestS2 []int
	for ci := 0; ci < len(nonTree); ci += stride {
		e := nonTree[ci]
		cyc := fundamentalCycle(em.eu[e], em.ev[e], parent, depth)
		cSep, cs1, cs2, ok := cf.splitByCycle(em, faces, faceOfDart, cyc)
		if !ok {
			continue
		}
		score := len(cs1)
		if len(cs2) > score {
			score = len(cs2)
		}
		if score <= limit && (score < bestScore || (score == bestScore && len(cSep) < len(bestSep))) {
			bestScore, bestSep, bestS1, bestS2 = score, cSep, cs1, cs2
		}
	}
	if bestSep == nil {
		// No balanced cycle among the candidates: BFS-level fallback.
		bf := separator.BFSFinder{Balance: balance}
		return bf.Separate(sk, sub)
	}
	toGlobal := func(ls []int) []int {
		out := make([]int, len(ls))
		for i, l := range ls {
			out[i] = sub[l]
		}
		sort.Ints(out)
		return out
	}
	return toGlobal(bestSep), toGlobal(bestS1), toGlobal(bestS2), nil
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// fundamentalCycle returns the vertices of the cycle formed by the tree
// paths of u and v up to their LCA (the non-tree edge u~v closes it).
func fundamentalCycle(u, v int, parent, depth []int) []int {
	var left, right []int
	for depth[u] > depth[v] {
		left = append(left, u)
		u = parent[u]
	}
	for depth[v] > depth[u] {
		right = append(right, v)
		v = parent[v]
	}
	for u != v {
		left = append(left, u)
		right = append(right, v)
		u = parent[u]
		v = parent[v]
	}
	cycle := append(left, u) // the LCA
	for i := len(right) - 1; i >= 0; i-- {
		cycle = append(cycle, right[i])
	}
	return cycle
}

// splitByCycle partitions the vertices by the cycle: the cycle's vertices
// are the separator; every other vertex takes the side of its incident
// faces in the dual graph cut along the cycle's edges. ok is false when the
// split degenerates (all non-cycle vertices on one side, or inconsistent
// sides near cut vertices make the cut pointless).
func (cf *CycleFinder) splitByCycle(em *Embedding, faces [][]int, faceOfDart []int, cycle []int) (sep, s1, s2 []int, ok bool) {
	onCycle := make(map[int]bool, len(cycle))
	for _, v := range cycle {
		onCycle[v] = true
	}
	cycEdge := make(map[[2]int]bool, len(cycle))
	for i := range cycle {
		cycEdge[edgeKey(cycle[i], cycle[(i+1)%len(cycle)])] = true
	}
	// Union faces across every non-cycle edge; the components are the
	// cycle's sides.
	comp := newDSU(len(faces))
	for e := 0; e < em.E(); e++ {
		if cycEdge[edgeKey(em.eu[e], em.ev[e])] {
			continue
		}
		comp.union(faceOfDart[2*e], faceOfDart[2*e+1])
	}
	// Assign sides; roots of the DSU name the components.
	sideOf := make(map[int]int) // component root -> 1 or 2
	nextSide := 1
	var a, b []int
	for v := 0; v < em.N(); v++ {
		if onCycle[v] {
			sep = append(sep, v)
			continue
		}
		if len(em.rot[v]) == 0 {
			// isolated within sub: park on the lighter side later via a
			a = append(a, v)
			continue
		}
		root := comp.find(faceOfDart[em.rot[v][0]])
		side, seen := sideOf[root]
		if !seen {
			if nextSide > 2 {
				// more than two components (cut vertices): lump extras
				// into side 2
				side = 2
			} else {
				side = nextSide
				nextSide++
			}
			sideOf[root] = side
		}
		if side == 1 {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	if len(a) == 0 || len(b) == 0 {
		return nil, nil, nil, false
	}
	return sep, a, b, true
}

type dsu struct{ p []int }

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{p}
}

func (d *dsu) find(x int) int {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.p[ra] = rb
	}
}

// GridEmbedding builds the canonical rotation system of a w×h grid whose
// vertex ids follow gen.NewGrid's layout (index = x*h + y): clockwise
// neighbor order W, N, E, S at every vertex.
func GridEmbedding(w, h int) *Embedding {
	id := func(x, y int) int { return x*h + y }
	rots := make([][]int, w*h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			v := id(x, y)
			if x > 0 {
				rots[v] = append(rots[v], id(x-1, y)) // W
			}
			if y+1 < h {
				rots[v] = append(rots[v], id(x, y+1)) // N
			}
			if x+1 < w {
				rots[v] = append(rots[v], id(x+1, y)) // E
			}
			if y > 0 {
				rots[v] = append(rots[v], id(x, y-1)) // S
			}
		}
	}
	em := NewEmbedding(w * h)
	em.setRotations(rots)
	return em
}
