package planar

import (
	"sort"

	"sepsp/internal/graph"
	"sepsp/internal/separator"
)

// ProxyFinder is a separator.Finder for the contracted graph G'. G' is not
// planar (each hammock contributes a K4 of attachment distances), so the
// paper separates the planar proxy G” instead: every hammock's K4 is
// replaced by a 4-cycle through its attachment vertices plus a "middle"
// (hub) vertex adjacent to all four. A separator of G” maps back to a
// separator of G' by replacing each hub with its hammock's attachment
// vertices; the key observation making this sound is that a hub not in the
// separator pins all its non-separator corners to one side (hub spokes are
// G” edges), so no K4 edge of G' can cross the cut.
//
// ProxyFinder builds the G” restricted to the current subgraph on each
// call, separates it with a BFS-level cut, and maps the result back — so it
// composes with the generic recursive tree builder without any global
// tree-transformation step.
type ProxyFinder struct {
	// HammockOf[v] = hammock index of G' vertex v.
	HammockOf []int
	// NumHammocks is the hammock count q.
	NumHammocks int
}

// Separate implements separator.Finder.
func (pf *ProxyFinder) Separate(sk *graph.Skeleton, sub []int) (sep, s1, s2 []int, err error) {
	// G'' vertex space: G' vertices 0..n-1, then hub h -> n + h.
	n := len(pf.HammockOf)
	inSub := make(map[int]bool, len(sub))
	hammocks := make(map[int][]int) // hammock -> present corners
	for _, v := range sub {
		inSub[v] = true
		h := pf.HammockOf[v]
		hammocks[h] = append(hammocks[h], v)
	}
	b := graph.NewBuilder(n + pf.NumHammocks)
	// Hub spokes and 4-cycles (cycle edges between consecutive present
	// corners in sorted order — the exact cyclic order is immaterial for
	// the separator argument).
	for h, corners := range hammocks {
		sort.Ints(corners)
		hub := n + h
		for i, c := range corners {
			b.AddBoth(hub, c, 1)
			if len(corners) > 1 {
				b.AddBoth(c, corners[(i+1)%len(corners)], 1)
			}
		}
	}
	// Inter-hammock edges of G' restricted to sub.
	for _, v := range sub {
		sk.Adj(v, func(u int) bool {
			if inSub[u] && pf.HammockOf[u] != pf.HammockOf[v] && v < u {
				b.AddBoth(v, u, 1)
			}
			return true
		})
	}
	gpp := b.Build()
	skpp := graph.NewSkeleton(gpp)
	// Vertex set of G'': present corners plus present hubs.
	var subpp []int
	subpp = append(subpp, sub...)
	for h := range hammocks {
		subpp = append(subpp, n+h)
	}
	sort.Ints(subpp)
	comps := skpp.SubComponents(subpp)
	var spp, a1, a2 []int
	if len(comps) > 1 {
		// Disconnected: empty separator, balanced component packing.
		sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
		for _, c := range comps {
			if len(a1) <= len(a2) {
				a1 = append(a1, c...)
			} else {
				a2 = append(a2, c...)
			}
		}
	} else {
		bf := separator.BFSFinder{}
		spp, a1, a2, err = bf.Separate(skpp, subpp)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	// Map back to G': expand hubs in the separator, drop hubs from sides.
	sepSet := make(map[int]bool)
	for _, v := range spp {
		if v < n {
			sepSet[v] = true
		} else {
			for _, c := range hammocks[v-n] {
				sepSet[c] = true
			}
		}
	}
	take := func(side []int) []int {
		var out []int
		for _, v := range side {
			if v < n && !sepSet[v] {
				out = append(out, v)
			}
		}
		return out
	}
	s1, s2 = take(a1), take(a2)
	for v := range sepSet {
		sep = append(sep, v)
	}
	sort.Ints(sep)
	sort.Ints(s1)
	sort.Ints(s2)
	if len(s1) == 0 && len(s2) == 0 {
		return nil, nil, nil, separator.ErrCannotSeparate
	}
	return sep, s1, s2, nil
}
