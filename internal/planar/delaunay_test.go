package planar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/baseline"
	"sepsp/internal/core"
	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
	"sepsp/internal/separator"
)

func TestDelaunayEmbeddingIsPlanar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(150)
		d := gen.NewDelaunay(n, gen.UnitWeights(), rng)
		em := NewEmbeddingFromRotations(d.Rotation)
		if err := em.EulerCheck(1); err != nil {
			t.Errorf("seed=%d n=%d: %v", seed, n, err)
			return false
		}
		// A triangulation of points in general position has 2n - 2 - h
		// faces (h = hull size), so at least n faces for n >= 10.
		if len(em.Faces()) < 3 {
			t.Errorf("seed=%d: only %d faces", seed, len(em.Faces()))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDelaunayEdgesAreMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := gen.NewDelaunay(100, gen.UnitWeights(), rng)
	d.G.Edges(func(from, to int, w float64) bool {
		dx := d.Points[from][0] - d.Points[to][0]
		dy := d.Points[from][1] - d.Points[to][1]
		want := dx*dx + dy*dy
		if diff := w*w - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("edge (%d,%d) weight %v != euclidean", from, to, w)
		}
		return true
	})
}

func TestDelaunayEndToEndWithCycleFinder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(250)
		d := gen.NewDelaunay(n, gen.UnitWeights(), rng)
		em := NewEmbeddingFromRotations(d.Rotation)
		sk := graph.NewSkeleton(d.G)
		tree, err := separator.Build(sk, &CycleFinder{Em: em}, separator.Options{LeafSize: 8})
		if err != nil {
			t.Errorf("seed=%d: Build: %v", seed, err)
			return false
		}
		if err := tree.Validate(sk); err != nil {
			t.Errorf("seed=%d: Validate: %v", seed, err)
			return false
		}
		eng, err := core.NewEngine(d.G, tree, core.Config{})
		if err != nil {
			t.Errorf("seed=%d: NewEngine: %v", seed, err)
			return false
		}
		src := rng.Intn(n)
		want, _ := baseline.BellmanFord(d.G, src, nil)
		got := eng.SSSP(src, nil)
		for v := range want {
			diff := got[v] - want[v]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-9*(1+want[v]) {
				t.Errorf("seed=%d v=%d: %v want %v", seed, v, got[v], want[v])
				return false
			}
		}
		return core.VerifyDistances(d.G, src, got, 1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDelaunaySeparatorQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := gen.NewDelaunay(800, gen.UnitWeights(), rng)
	em := NewEmbeddingFromRotations(d.Rotation)
	sk := graph.NewSkeleton(d.G)
	tree, err := separator.Build(sk, &CycleFinder{Em: em}, separator.Options{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Height > 60 {
		t.Fatalf("degenerate height %d", tree.Height)
	}
	// Not a hard O(√n) guarantee without triangulated L-T, but the greedy
	// cycles should stay well below n.
	if tree.MaxSeparatorSize() > 200 {
		t.Fatalf("separator %d too large for n=800", tree.MaxSeparatorSize())
	}
}
