package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/pram"
)

func randomSquare(rng *rand.Rand, n int, density float64, lo, hi float64) *Dense {
	d := NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				d.Set(i, j, lo+rng.Float64()*(hi-lo))
			}
		}
	}
	return d
}

// naiveMul is the reference min-plus product.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			best := math.Inf(1)
			for k := 0; k < a.C; k++ {
				if s := a.At(i, k) + b.At(k, j); s < best {
					best = s
				}
			}
			out.Set(i, j, best)
		}
	}
	return out
}

func TestMulMinPlusMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a, b := New(r, k), New(k, c)
		for i := 0; i < r; i++ {
			for j := 0; j < k; j++ {
				if rng.Float64() < 0.7 {
					a.Set(i, j, rng.NormFloat64()*10)
				}
			}
		}
		for i := 0; i < k; i++ {
			for j := 0; j < c; j++ {
				if rng.Float64() < 0.7 {
					b.Set(i, j, rng.NormFloat64()*10)
				}
			}
		}
		got := MulMinPlus(a, b, pram.NewExecutor(3), nil)
		return got.Equal(naiveMul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClosureMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		d := randomSquare(rng, n, 0.4, 0.1, 10)
		a, b := d.Clone(), d.Clone()
		if err := Closure(a, pram.Sequential, nil); err != nil {
			return false
		}
		if err := FloydWarshall(b, pram.Sequential, nil); err != nil {
			return false
		}
		// Floating point: same set of path sums, possibly different
		// association order. Compare with tolerance.
		for i := range a.A {
			x, y := a.A[i], b.A[i]
			if math.IsInf(x, 1) != math.IsInf(y, 1) {
				return false
			}
			if !math.IsInf(x, 1) && math.Abs(x-y) > 1e-9*(1+math.Abs(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClosureDetectsNegativeCycle(t *testing.T) {
	d := NewSquare(3)
	d.Set(0, 1, 1)
	d.Set(1, 2, -3)
	d.Set(2, 0, 1)
	if err := Closure(d.Clone(), pram.Sequential, nil); !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("Closure: want ErrNegativeCycle, got %v", err)
	}
	if err := FloydWarshall(d, pram.Sequential, nil); !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("FloydWarshall: want ErrNegativeCycle, got %v", err)
	}
}

func TestClosureNegativeEdgesNoCycle(t *testing.T) {
	d := NewSquare(3)
	d.Set(0, 1, -5)
	d.Set(1, 2, -7)
	if err := Closure(d, pram.Sequential, nil); err != nil {
		t.Fatal(err)
	}
	if d.At(0, 2) != -12 {
		t.Fatalf("dist(0,2)=%v", d.At(0, 2))
	}
}

func TestTriangularCountingWork(t *testing.T) {
	st := &pram.Stats{}
	a := New(3, 4)
	b := New(4, 5)
	MulMinPlus(a, b, pram.Sequential, st)
	if st.Work() != 3*4*5 {
		t.Fatalf("work=%d want 60", st.Work())
	}
}

func TestSquareStepConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randomSquare(rng, 12, 0.3, 1, 5)
	for i := 0; i < 12; i++ {
		d.SetMin(i, i, 0)
	}
	steps := 0
	for SquareStep(d, pram.Sequential, nil) {
		steps++
		if steps > 20 {
			t.Fatal("SquareStep does not converge")
		}
	}
	// After convergence d is transitively closed: one more naive pass
	// cannot improve.
	prod := naiveMul(d, d)
	for i := range prod.A {
		if prod.A[i] < d.A[i] {
			t.Fatal("converged matrix not closed")
		}
	}
}

func TestSetMinAndAccessors(t *testing.T) {
	d := New(2, 2)
	d.SetMin(0, 1, 5)
	d.SetMin(0, 1, 7)
	if d.At(0, 1) != 5 {
		t.Fatalf("SetMin raised a value: %v", d.At(0, 1))
	}
	d.SetMin(0, 1, 2)
	if d.At(0, 1) != 2 {
		t.Fatal("SetMin did not lower")
	}
	if !d.Clone().Equal(d) {
		t.Fatal("clone not equal")
	}
	o := New(2, 2)
	o.Set(0, 1, 1)
	d.MinInPlace(o)
	if d.At(0, 1) != 1 {
		t.Fatal("MinInPlace failed")
	}
}

func TestMulRounds(t *testing.T) {
	if MulRounds(1) != 1 {
		t.Fatalf("MulRounds(1)=%d", MulRounds(1))
	}
	if MulRounds(8) != 4 {
		t.Fatalf("MulRounds(8)=%d", MulRounds(8))
	}
}
