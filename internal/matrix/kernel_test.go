package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/pram"
)

// --- Degenerate shapes -------------------------------------------------------

// TestMulDegenerateShapes covers every R/C/k combination in {0,1}: the blocked
// kernel, the naive kernel, and the counted work must all agree, no call may
// panic, and an empty inner dimension must yield the all-+Inf product.
func TestMulDegenerateShapes(t *testing.T) {
	for _, r := range []int{0, 1} {
		for _, k := range []int{0, 1} {
			for _, c := range []int{0, 1} {
				t.Run(fmt.Sprintf("r%d_k%d_c%d", r, k, c), func(t *testing.T) {
					a, b := New(r, k), New(k, c)
					if r == 1 && k == 1 {
						a.Set(0, 0, 2)
					}
					if k == 1 && c == 1 {
						b.Set(0, 0, 3)
					}
					stT, stN := &pram.Stats{}, &pram.Stats{}
					got := MulMinPlus(a, b, pram.Sequential, stT)
					want := MulMinPlusNaive(a, b, pram.Sequential, stN)
					if got.R != r || got.C != c {
						t.Fatalf("shape %dx%d, want %dx%d", got.R, got.C, r, c)
					}
					if !got.Equal(want) {
						t.Fatalf("blocked %v != naive %v", got.A, want.A)
					}
					if stT.Work() != stN.Work() || stT.Work() != int64(r*k*c) {
						t.Fatalf("work blocked=%d naive=%d want %d", stT.Work(), stN.Work(), r*k*c)
					}
					if k == 0 && r == 1 && c == 1 && !math.IsInf(got.At(0, 0), 1) {
						t.Fatalf("empty inner dimension: got %v, want +Inf", got.At(0, 0))
					}
				})
			}
		}
	}
}

func TestMulAllInf(t *testing.T) {
	a, b := New(5, 7), New(7, 3)
	st := &pram.Stats{}
	got := MulMinPlus(a, b, pram.Sequential, st)
	for _, v := range got.A {
		if !math.IsInf(v, 1) {
			t.Fatalf("all-Inf product has finite entry %v", v)
		}
	}
	if st.Work() != 5*7*3 {
		t.Fatalf("Inf skipping changed counted work: %d", st.Work())
	}
}

func TestMulRoundsDegenerate(t *testing.T) {
	if MulRounds(0) != 0 {
		t.Fatalf("MulRounds(0)=%d, want 0 (no triples, no reduction)", MulRounds(0))
	}
	if MulRounds(-3) != 0 {
		t.Fatalf("MulRounds(-3)=%d, want 0", MulRounds(-3))
	}
	if MulRounds(1) != 1 || MulRounds(2) != 2 {
		t.Fatalf("MulRounds small values changed: %d %d", MulRounds(1), MulRounds(2))
	}
}

func TestClosureDegenerate(t *testing.T) {
	for _, n := range []int{0, 1} {
		d := NewSquare(n)
		if err := Closure(d, pram.Sequential, nil); err != nil {
			t.Fatalf("Closure(n=%d): %v", n, err)
		}
	}
	// 1×1 with a negative self-loop is a negative cycle.
	d := New(1, 1)
	d.Set(0, 0, -1)
	if err := Closure(d, pram.Sequential, nil); !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("negative self-loop: got %v", err)
	}
}

func TestSquareStepIntoDegenerate(t *testing.T) {
	if SquareStepInto(New(0, 0), New(0, 0), pram.Sequential, nil) {
		t.Fatal("empty matrix reported a change")
	}
	d := NewSquare(1)
	if SquareStepInto(New(1, 1), d, pram.Sequential, nil) {
		t.Fatal("1x1 identity reported a change")
	}
}

func TestMulIntoPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	a, b := New(2, 3), New(3, 2)
	mustPanic("inner mismatch", func() { MulMinPlusInto(New(2, 2), a, a, nil, nil) })
	mustPanic("dst shape", func() { MulMinPlusInto(New(3, 3), a, b, nil, nil) })
	d := NewSquare(4)
	mustPanic("aliasing", func() { SquareStepInto(d, d, nil, nil) })
	mustPanic("mul aliasing", func() { MulMinPlusInto(d, d, NewSquare(4), nil, nil) })
}

// --- Exact equivalence of blocked vs naive kernels ---------------------------

// randomRect fills an r×c matrix with the given density of finite entries.
func randomRect(rng *rand.Rand, r, c int, density float64) *Dense {
	d := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				d.Set(i, j, math.Trunc(rng.NormFloat64()*1000)/16)
			}
		}
	}
	return d
}

// bitIdentical demands exact float equality entry by entry (Inf == Inf; no
// tolerance): min-plus never reassociates additions, so the blocked kernel
// must reproduce the naive result to the last bit.
func bitIdentical(a, b *Dense) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i, v := range a.A {
		w := b.A[i]
		if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
			return false
		}
	}
	return true
}

// TestBlockedMulBitIdentical crosses tile boundaries (sizes beyond
// tileR/tileC/tileK) and densities from Inf-dominated to fully dense.
func TestBlockedMulBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1, 2, 7, tileK - 1, tileK + 1, tileC, tileC + 3, 100}
		r := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		c := dims[rng.Intn(len(dims))]
		density := []float64{0.02, 0.3, 1.0}[rng.Intn(3)]
		a := randomRect(rng, r, k, density)
		b := randomRect(rng, k, c, density)
		stT, stN := &pram.Stats{}, &pram.Stats{}
		got := MulMinPlus(a, b, pram.NewExecutor(3), stT)
		want := MulMinPlusNaive(a, b, pram.Sequential, stN)
		return bitIdentical(got, want) && stT.Work() == stN.Work()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockedClosureBitIdentical: the tiled ping-pong closure and the naive
// closure must agree bitwise — same entries, same counted work, same error —
// including negative-edge inputs where the squaring trajectory matters.
func TestBlockedClosureBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(90)
		lo := []float64{0.1, -2}[rng.Intn(2)] // include negative edges
		d := randomSquare(rng, n, 0.3, lo, 10)
		a, b := d.Clone(), d.Clone()
		ws := NewWorkspace()
		stT, stN := &pram.Stats{}, &pram.Stats{}
		errT := ClosureWS(a, ws, pram.NewExecutor(3), stT)
		errN := ClosureNaive(b, pram.Sequential, stN)
		if (errT == nil) != (errN == nil) {
			return false
		}
		if errT != nil {
			// Both detected a negative cycle; the counted work up to
			// detection must also agree (same squaring trajectory).
			return errors.Is(errT, ErrNegativeCycle) && stT.Work() == stN.Work()
		}
		return bitIdentical(a, b) && stT.Work() == stN.Work()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSquareStepIntoMatchesSquareStep: the out-of-place step and the in-place
// step agree on result, changed flag, and counted work.
func TestSquareStepIntoMatchesSquareStep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		d := randomSquare(rng, n, 0.25, 0.5, 8)
		inPlace := d.Clone()
		dst := New(n, n)
		stA, stB := &pram.Stats{}, &pram.Stats{}
		chA := SquareStepInto(dst, d, pram.NewExecutor(2), stA)
		chB := SquareStep(inPlace, pram.Sequential, stB)
		return chA == chB && bitIdentical(dst, inPlace) && stA.Work() == stB.Work()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkspaceReuseIsClean: matrices drawn from a heavily recycled workspace
// behave exactly like fresh ones (stale slab contents never leak through).
func TestWorkspaceReuseIsClean(t *testing.T) {
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		n := 1 + rng.Intn(50)
		d := randomSquare(rng, n, 0.4, 0.1, 5)
		ref := d.Clone()
		if err := ClosureWS(d, ws, pram.Sequential, nil); err != nil {
			t.Fatal(err)
		}
		if err := ClosureNaive(ref, pram.Sequential, nil); err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(d, ref) {
			t.Fatalf("iter %d (n=%d): recycled workspace corrupted closure", iter, n)
		}
		// Also cycle some rectangular shapes through the pool.
		x := ws.Get(n, 2*n)
		y := ws.GetInf(2*n, n)
		ws.Put(x)
		ws.Put(y)
	}
	if ws.Reuses() == 0 {
		t.Fatal("workspace never reused a slab")
	}
}

func TestWorkspaceShapes(t *testing.T) {
	ws := NewWorkspace()
	g := ws.GetInf(3, 4)
	for _, v := range g.A {
		if !math.IsInf(v, 1) {
			t.Fatal("GetInf returned finite entry")
		}
	}
	s := ws.GetSquare(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := math.Inf(1)
			if i == j {
				want = 0
			}
			if s.At(i, j) != want {
				t.Fatalf("GetSquare(%d,%d)=%v", i, j, s.At(i, j))
			}
		}
	}
	ws.Put(g)
	r := ws.Get(2, 6) // same capacity class as 3×4
	if r.R != 2 || r.C != 6 || len(r.A) != 12 {
		t.Fatalf("cross-shape reuse broke shape: %dx%d len %d", r.R, r.C, len(r.A))
	}
	if ws.Reuses() != 1 {
		t.Fatalf("reuses=%d, want 1", ws.Reuses())
	}
	// Nil workspace degrades to plain allocation.
	var nilWS *Workspace
	d := nilWS.Get(4, 4)
	if d.R != 4 || d.C != 4 {
		t.Fatal("nil workspace Get failed")
	}
	nilWS.Put(d) // no-op, must not panic
	ws.Put(nil)  // nil matrix, must not panic
}
