// Package matrix provides dense min-plus (tropical) matrices: the inner
// kernel of the paper's all-pairs computations. Algorithm 4.1 runs min-plus
// closures on separator graphs H_S and rectangular 3-limited products on H;
// Algorithm 4.3 runs one min-plus squaring step per node per iteration.
//
// The production kernels are cache-blocked: MulMinPlusInto and
// SquareStepInto walk the result in tileR×tileC tiles (scheduled by
// pram.Executor.ForTiles2D), stream b through tileK-row column panels that
// stay L1-resident across a whole row block, and unroll eight result rows
// per b-panel load so each loaded b value feeds eight relaxations. Rows of a
// that are +Inf across a panel skip the panel's b traffic entirely. On top
// of the blocking, ClosureWS squares semi-naively: after the first squaring
// only triples with a factor entry that improved in the previous step are
// re-relaxed (provably sufficient — see squareStepDelta), which is what
// carries repeated squaring past 2x over the naive kernel. The ...Into
// forms write into caller-owned destinations, and Workspace recycles those
// destinations across products, so a whole augmentation run allocates
// O(tree-nodes) slabs instead of one per product. MulMinPlusNaive and
// ClosureNaive keep the straightforward row-parallel kernels as the
// equivalence and benchmark reference.
//
// Work is counted as one unit per (i,k,j) triple inspected — the tiled
// kernels charge exactly a.R·a.C·b.C per product regardless of how much the
// +Inf skipping collapses, so counted work (and every Stats-derived golden
// value) is byte-identical to the naive kernels while wall clock drops.
// Parallel time is counted as rounds by the callers (see internal/pram).
package matrix

import (
	"errors"
	"math"
	mbits "math/bits"
	"sync/atomic"

	"sepsp/internal/pram"
)

// ErrNegativeCycle reports that a closure computation found a negative-weight
// cycle (a negative diagonal entry).
var ErrNegativeCycle = errors.New("matrix: negative-weight cycle detected")

// Dense is a rectangular dense matrix over the min-plus semiring. Missing
// entries are +Inf.
type Dense struct {
	R, C int
	A    []float64 // row-major, length R*C
}

// New returns an R×C matrix with all entries +Inf.
func New(r, c int) *Dense {
	a := make([]float64, r*c)
	inf := math.Inf(1)
	for i := range a {
		a[i] = inf
	}
	return &Dense{R: r, C: c, A: a}
}

// NewSquare returns an n×n matrix with +Inf off-diagonal and 0 diagonal.
func NewSquare(n int) *Dense {
	d := New(n, n)
	for i := 0; i < n; i++ {
		d.A[i*n+i] = 0
	}
	return d
}

// At returns entry (i, j).
func (d *Dense) At(i, j int) float64 { return d.A[i*d.C+j] }

// Set assigns entry (i, j).
func (d *Dense) Set(i, j int, v float64) { d.A[i*d.C+j] = v }

// SetMin lowers entry (i, j) to v if v is smaller.
func (d *Dense) SetMin(i, j int, v float64) {
	if p := &d.A[i*d.C+j]; v < *p {
		*p = v
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := &Dense{R: d.R, C: d.C, A: make([]float64, len(d.A))}
	copy(c.A, d.A)
	return c
}

// Equal reports exact equality of shape and entries (Inf == Inf).
func (d *Dense) Equal(o *Dense) bool {
	if d.R != o.R || d.C != o.C {
		return false
	}
	for i, v := range d.A {
		if v != o.A[i] && !(math.IsInf(v, 1) && math.IsInf(o.A[i], 1)) {
			return false
		}
	}
	return true
}

// MinInPlace sets d = min(d, o) elementwise.
func (d *Dense) MinInPlace(o *Dense) {
	if d.R != o.R || d.C != o.C {
		panic("matrix: shape mismatch")
	}
	for i, v := range o.A {
		if v < d.A[i] {
			d.A[i] = v
		}
	}
}

// Tile sizes of the blocked kernels. A b-panel is tileK×tileC float64s
// (64 KiB, L2-resident) streamed against tileR result rows eight at a time,
// so every loaded b value feeds eight relaxations; a dst tile is tileR×tileC
// (128 KiB), small enough that the whole K sweep of one tile stays in L2.
// Wide tiles beat L1-sized ones here because the kernel is dominated by the
// relax ALU chain, not bandwidth — the win from tiling is bounding the
// working set to L2 and amortizing loop/slice overhead over long rows.
const (
	tileR = 64  // result rows per tile
	tileC = 256 // result columns per tile
	tileK = 32  // inner-dimension rows of b per panel
)

// MulMinPlusInto computes the min-plus product dst = a⊗b with the
// cache-blocked kernel, parallelized over result tiles. dst must have shape
// a.R×b.C and must not alias a or b; its prior contents are ignored. An
// empty inner dimension (a.C == 0) yields the all-+Inf matrix.
//
// Work charged into st: exactly a.R*a.C*b.C triples, identical to the naive
// kernel no matter how many +Inf panels are skipped. Rounds are NOT counted
// here: matrix kernels only count work, and callers account parallel rounds
// analytically (one product is MulRounds(k) PRAM rounds via a balanced min
// reduction), because concurrent kernels on different tree nodes share one
// round, not one per kernel.
func MulMinPlusInto(dst, a, b *Dense, ex *pram.Executor, st *pram.Stats) {
	if a.C != b.R {
		panic("matrix: inner dimension mismatch")
	}
	if dst.R != a.R || dst.C != b.C {
		panic("matrix: destination shape mismatch")
	}
	if aliases(dst, a) || aliases(dst, b) {
		panic("matrix: MulMinPlusInto destination aliases an operand")
	}
	if dst.R == 0 || dst.C == 0 {
		return
	}
	if ex == nil {
		ex = pram.Sequential
	}
	k := a.C
	inf := math.Inf(1)
	ex.ForTiles2D(dst.R, dst.C, tileR, tileC, func(r0, r1, c0, c1 int) {
		for i := r0; i < r1; i++ {
			row := dst.A[i*dst.C+c0 : i*dst.C+c1]
			for j := range row {
				row[j] = inf
			}
		}
		mulTile(dst, a, b, r0, r1, c0, c1)
		st.AddWork(int64(r1-r0) * int64(k) * int64(c1-c0))
	})
}

// aliases reports whether two matrices share backing storage.
func aliases(x, y *Dense) bool {
	return x == y || (len(x.A) > 0 && len(y.A) > 0 && &x.A[0] == &y.A[0])
}

// mulTile relaxes the dst tile [r0,r1)×[c0,c1) with every (i,k,j) triple of
// a⊗b, min-ing into dst's existing entries. The K dimension is walked in
// tileK panels and result rows are processed eight at a time so each b value
// loaded feeds eight relaxations. An 8-row group whose a values are all +Inf
// across a panel row skips that row's b traffic entirely; a group with any
// +Inf member relaxes anyway — relaxing with v = +Inf is a no-op (the
// candidate sum is +Inf and never improves an entry), so the skip is purely
// a fast path and the result is unchanged. (Entries are finite or +Inf,
// never -Inf, so the sums never produce NaN.)
func mulTile(dst, a, b *Dense, r0, r1, c0, c1 int) {
	k, bc, dc := a.C, b.C, dst.C
	inf := math.Inf(1)
	for k0 := 0; k0 < k; k0 += tileK {
		k1 := k0 + tileK
		if k1 > k {
			k1 = k
		}
		i := r0
		for ; i+7 < r1; i += 8 {
			a0 := a.A[i*k+k0 : i*k+k1]
			a1 := a.A[(i+1)*k+k0 : (i+1)*k+k1]
			a2 := a.A[(i+2)*k+k0 : (i+2)*k+k1]
			a3 := a.A[(i+3)*k+k0 : (i+3)*k+k1]
			a4 := a.A[(i+4)*k+k0 : (i+4)*k+k1]
			a5 := a.A[(i+5)*k+k0 : (i+5)*k+k1]
			a6 := a.A[(i+6)*k+k0 : (i+6)*k+k1]
			a7 := a.A[(i+7)*k+k0 : (i+7)*k+k1]
			o0 := dst.A[i*dc+c0 : i*dc+c1]
			o1 := dst.A[(i+1)*dc+c0 : (i+1)*dc+c1]
			o2 := dst.A[(i+2)*dc+c0 : (i+2)*dc+c1]
			o3 := dst.A[(i+3)*dc+c0 : (i+3)*dc+c1]
			o4 := dst.A[(i+4)*dc+c0 : (i+4)*dc+c1]
			o5 := dst.A[(i+5)*dc+c0 : (i+5)*dc+c1]
			o6 := dst.A[(i+6)*dc+c0 : (i+6)*dc+c1]
			o7 := dst.A[(i+7)*dc+c0 : (i+7)*dc+c1]
			for kk := range a0 {
				v0, v1, v2, v3 := a0[kk], a1[kk], a2[kk], a3[kk]
				v4, v5, v6, v7 := a4[kk], a5[kk], a6[kk], a7[kk]
				if v0 == inf && v1 == inf && v2 == inf && v3 == inf &&
					v4 == inf && v5 == inf && v6 == inf && v7 == inf {
					continue // +Inf panel row: no b traffic
				}
				brow := b.A[(k0+kk)*bc+c0 : (k0+kk)*bc+c1]
				if v0 < inf && v1 < inf && v2 < inf && v3 < inf &&
					v4 < inf && v5 < inf && v6 < inf && v7 < inf {
					relax8(o0, o1, o2, o3, o4, o5, o6, o7, brow, v0, v1, v2, v3, v4, v5, v6, v7)
					continue
				}
				// Mixed group: relax only the finite rows, matching the
				// naive kernel's per-row +Inf skip.
				if v0 < inf {
					relax1(o0, brow, v0)
				}
				if v1 < inf {
					relax1(o1, brow, v1)
				}
				if v2 < inf {
					relax1(o2, brow, v2)
				}
				if v3 < inf {
					relax1(o3, brow, v3)
				}
				if v4 < inf {
					relax1(o4, brow, v4)
				}
				if v5 < inf {
					relax1(o5, brow, v5)
				}
				if v6 < inf {
					relax1(o6, brow, v6)
				}
				if v7 < inf {
					relax1(o7, brow, v7)
				}
			}
		}
		for ; i+3 < r1; i += 4 {
			a0 := a.A[i*k+k0 : i*k+k1]
			a1 := a.A[(i+1)*k+k0 : (i+1)*k+k1]
			a2 := a.A[(i+2)*k+k0 : (i+2)*k+k1]
			a3 := a.A[(i+3)*k+k0 : (i+3)*k+k1]
			o0 := dst.A[i*dc+c0 : i*dc+c1]
			o1 := dst.A[(i+1)*dc+c0 : (i+1)*dc+c1]
			o2 := dst.A[(i+2)*dc+c0 : (i+2)*dc+c1]
			o3 := dst.A[(i+3)*dc+c0 : (i+3)*dc+c1]
			for kk := range a0 {
				v0, v1, v2, v3 := a0[kk], a1[kk], a2[kk], a3[kk]
				if v0 == inf && v1 == inf && v2 == inf && v3 == inf {
					continue
				}
				brow := b.A[(k0+kk)*bc+c0 : (k0+kk)*bc+c1]
				relax4(o0, o1, o2, o3, brow, v0, v1, v2, v3)
			}
		}
		for ; i < r1; i++ {
			arow := a.A[i*k+k0 : i*k+k1]
			orow := dst.A[i*dc+c0 : i*dc+c1]
			for kk, av := range arow {
				if av < inf {
					relax1(orow, b.A[(k0+kk)*bc+c0:(k0+kk)*bc+c1], av)
				}
			}
		}
	}
}

// relax8 is the register-blocked inner tile: one streamed b panel row relaxes
// eight result rows. +Inf v's are harmless no-ops (see mulTile).
func relax8(o0, o1, o2, o3, o4, o5, o6, o7, brow []float64, v0, v1, v2, v3, v4, v5, v6, v7 float64) {
	o0 = o0[:len(brow)]
	o1 = o1[:len(brow)]
	o2 = o2[:len(brow)]
	o3 = o3[:len(brow)]
	o4 = o4[:len(brow)]
	o5 = o5[:len(brow)]
	o6 = o6[:len(brow)]
	o7 = o7[:len(brow)]
	for j, bv := range brow {
		if s := v0 + bv; s < o0[j] {
			o0[j] = s
		}
		if s := v1 + bv; s < o1[j] {
			o1[j] = s
		}
		if s := v2 + bv; s < o2[j] {
			o2[j] = s
		}
		if s := v3 + bv; s < o3[j] {
			o3[j] = s
		}
		if s := v4 + bv; s < o4[j] {
			o4[j] = s
		}
		if s := v5 + bv; s < o5[j] {
			o5[j] = s
		}
		if s := v6 + bv; s < o6[j] {
			o6[j] = s
		}
		if s := v7 + bv; s < o7[j] {
			o7[j] = s
		}
	}
}

// relax4 is the register-blocked inner tile: one streamed b panel row
// relaxes four result rows.
func relax4(o0, o1, o2, o3, brow []float64, v0, v1, v2, v3 float64) {
	o0 = o0[:len(brow)]
	o1 = o1[:len(brow)]
	o2 = o2[:len(brow)]
	o3 = o3[:len(brow)]
	for j, bv := range brow {
		if s := v0 + bv; s < o0[j] {
			o0[j] = s
		}
		if s := v1 + bv; s < o1[j] {
			o1[j] = s
		}
		if s := v2 + bv; s < o2[j] {
			o2[j] = s
		}
		if s := v3 + bv; s < o3[j] {
			o3[j] = s
		}
	}
}

func relax1(orow, brow []float64, av float64) {
	orow = orow[:len(brow)]
	for j, bv := range brow {
		if s := av + bv; s < orow[j] {
			orow[j] = s
		}
	}
}

// MulMinPlus computes a⊗b into a fresh matrix with the blocked kernel.
// Hot paths should prefer MulMinPlusInto with a Workspace-owned destination.
func MulMinPlus(a, b *Dense, ex *pram.Executor, st *pram.Stats) *Dense {
	out := New(a.R, b.C)
	MulMinPlusInto(out, a, b, ex, st)
	return out
}

// MulMinPlusNaive is the straightforward row-parallel i/k/j kernel, kept as
// the exact-equivalence reference and benchmark baseline for the blocked
// kernels. Work counted: a.R*a.C*b.C, same as MulMinPlusInto.
func MulMinPlusNaive(a, b *Dense, ex *pram.Executor, st *pram.Stats) *Dense {
	if a.C != b.R {
		panic("matrix: inner dimension mismatch")
	}
	if ex == nil {
		ex = pram.Sequential
	}
	out := New(a.R, b.C)
	k, c := a.C, b.C
	if out.R == 0 || out.C == 0 {
		return out
	}
	ex.ForChunked(a.R, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.A[i*k : (i+1)*k]
			orow := out.A[i*c : (i+1)*c]
			for kk, av := range arow {
				if math.IsInf(av, 1) {
					continue
				}
				brow := b.A[kk*c : (kk+1)*c]
				for j, bv := range brow {
					if s := av + bv; s < orow[j] {
						orow[j] = s
					}
				}
			}
		}
		st.AddWork(int64(hi-lo) * int64(k) * int64(c))
	})
	return out
}

// MulRounds returns the PRAM rounds charged for one min-plus product with
// inner dimension k: ceil(log2 k) + 1 (balanced min reduction). A product
// with an empty inner dimension inspects no triples and charges 0 rounds.
func MulRounds(k int) int64 {
	if k <= 0 {
		return 0
	}
	r := int64(1)
	for ; k > 1; k >>= 1 {
		r++
	}
	return r
}

// SquareStepInto performs one path-doubling step out of place:
// dst = min(d, d⊗d), reporting whether any entry strictly improved. d must
// be square, dst the same shape and non-aliasing. Callers ping-pong two
// buffers (swap dst and d when a step improves) so a doubling loop allocates
// nothing. Work charged: d.R³, identical to SquareStep.
func SquareStepInto(dst, d *Dense, ex *pram.Executor, st *pram.Stats) bool {
	if d.R != d.C {
		panic("matrix: SquareStepInto requires a square matrix")
	}
	if dst.R != d.R || dst.C != d.C {
		panic("matrix: destination shape mismatch")
	}
	if aliases(dst, d) {
		panic("matrix: SquareStepInto destination aliases the source")
	}
	n := d.R
	if n == 0 {
		return false
	}
	if ex == nil {
		ex = pram.Sequential
	}
	var changed atomic.Bool
	ex.ForTiles2D(n, n, tileR, tileC, func(r0, r1, c0, c1 int) {
		// Seed the dst tile with d's entries, then relax the products in:
		// the tile ends as min(d, d⊗d) with the merge fused into the kernel.
		for i := r0; i < r1; i++ {
			copy(dst.A[i*n+c0:i*n+c1], d.A[i*n+c0:i*n+c1])
		}
		mulTile(dst, d, d, r0, r1, c0, c1)
		ch := false
	scan:
		for i := r0; i < r1; i++ {
			drow := d.A[i*n+c0 : i*n+c1]
			orow := dst.A[i*n+c0 : i*n+c1]
			for j := range orow {
				if orow[j] < drow[j] {
					ch = true
					break scan
				}
			}
		}
		if ch {
			changed.Store(true)
		}
		st.AddWork(int64(r1-r0) * int64(n) * int64(c1-c0))
	})
	return changed.Load()
}

// SquareStep performs one path-doubling step in place: d = min(d, d⊗d).
// d must be square. It reports whether any entry strictly improved. Loop
// call sites should use SquareStepInto with ping-ponged buffers instead;
// this form allocates a scratch product per call.
func SquareStep(d *Dense, ex *pram.Executor, st *pram.Stats) bool {
	if d.R != d.C {
		panic("matrix: SquareStep requires a square matrix")
	}
	tmp := &Dense{R: d.R, C: d.C, A: make([]float64, len(d.A))}
	changed := SquareStepInto(tmp, d, ex, st)
	copy(d.A, tmp.A)
	return changed
}

// Closure computes the reflexive-transitive min-plus closure of the square
// matrix d in place by repeated squaring: diagonal entries are first lowered
// to 0, then ceil(log2 n) squaring steps run (with early exit when a step
// changes nothing). If any diagonal entry becomes negative, the computation
// stops and ErrNegativeCycle is returned.
//
// Work O(n³ log n), rounds O(log² n) — the bound the paper quotes for
// implementing step ii of Algorithm 4.1 with path doubling. The doubling
// loop ping-pongs d against one ws-provided scratch buffer (ws may be nil:
// the scratch is then allocated and dropped).
func Closure(d *Dense, ex *pram.Executor, st *pram.Stats) error {
	return ClosureWS(d, nil, ex, st)
}

// ClosureWS is Closure with an explicit workspace for the doubling scratch.
//
// From the second squaring on it runs delta (semi-naive) steps: a triple
// (i,k,j) is relaxed only if entry (i,k) or entry (k,j) improved in the
// previous step. This is exact, not approximate — if neither factor changed,
// the identical candidate sum was already applied by the previous step's
// full product and merged into the current matrix, so it cannot improve
// anything now. Late steps of a closure, where few entries still move, thus
// cost O(changes·n) instead of n³ wall clock. Counted work per step stays
// the analytic n³ of the abstract squaring, identical to ClosureNaive.
func ClosureWS(d *Dense, ws *Workspace, ex *pram.Executor, st *pram.Stats) error {
	if d.R != d.C {
		panic("matrix: Closure requires a square matrix")
	}
	n := d.R
	for i := 0; i < n; i++ {
		d.SetMin(i, i, 0)
	}
	if err := checkDiagonal(d); err != nil {
		return err
	}
	if n < 2 {
		return nil
	}
	scratch := ws.Get(n, n)
	delta := newDeltaState(n)
	cur := d
	first := true
	var err error
	for span := 1; span < n; span *= 2 {
		if first {
			SquareStepInto(scratch, cur, ex, st)
			first = false
		} else {
			squareStepDelta(scratch, cur, delta, ex, st)
		}
		// One serial n² pass replaces the in-kernel change scan: it both
		// decides the early exit and rebuilds the change bitmaps that drive
		// the next delta step.
		if !delta.rebuild(scratch, cur) {
			break
		}
		cur, scratch = scratch, cur
		if err = checkDiagonal(cur); err != nil {
			break
		}
	}
	if cur != d {
		copy(d.A, cur.A)
		ws.Put(cur)
	} else {
		ws.Put(scratch)
	}
	return err
}

// deltaState tracks which entries of the doubling matrix improved in the
// previous squaring step, at three granularities: a per-entry bitmap, a
// per-row flag, and a per-(row, column-tile) flag so a tile kernel can skip
// whole b rows without scanning the bitmap.
type deltaState struct {
	n, words, tilesC int
	changed          []uint64 // bit (i*words + k/64, k%64): entry (i,k) improved
	rowColCnt        []int32  // [tc*n + k]: improved entries of row k within column tile tc
}

func newDeltaState(n int) *deltaState {
	words := (n + 63) / 64
	tilesC := (n + tileC - 1) / tileC
	return &deltaState{
		n: n, words: words, tilesC: tilesC,
		changed:   make([]uint64, n*words),
		rowColCnt: make([]int32, tilesC*n),
	}
}

// rebuild compares the step result dst against its input d and records every
// improved entry. Reports whether anything improved (the doubling loop's
// early-exit condition — same predicate the in-place merge used).
func (ds *deltaState) rebuild(dst, d *Dense) bool {
	n, words := ds.n, ds.words
	for i := range ds.changed {
		ds.changed[i] = 0
	}
	any := false
	for i := 0; i < n; i++ {
		drow := d.A[i*n : (i+1)*n]
		orow := dst.A[i*n : (i+1)*n]
		bits := ds.changed[i*words : (i+1)*words]
		rowHit := false
		for j, v := range orow {
			if v < drow[j] {
				bits[j/64] |= 1 << uint(j%64)
				rowHit = true
			}
		}
		any = any || rowHit
		for tc := 0; tc < ds.tilesC; tc++ {
			w0 := tc * tileC / 64
			w1 := (tc + 1) * tileC / 64
			if w1 > words {
				w1 = words
			}
			var cnt int32
			for w := w0; w < w1; w++ {
				cnt += int32(mbits.OnesCount64(bits[w]))
			}
			ds.rowColCnt[tc*n+i] = cnt
		}
	}
	return any
}

// squareStepDelta performs one doubling step dst = min(d, d⊗d) relaxing only
// the triples the previous step's changes can still improve (see ClosureWS).
// Work charged: n³, the abstract cost of the full squaring.
func squareStepDelta(dst, d *Dense, ds *deltaState, ex *pram.Executor, st *pram.Stats) {
	n := d.R
	if ex == nil {
		ex = pram.Sequential
	}
	inf := math.Inf(1)
	words := ds.words
	ex.ForTiles2D(n, n, tileR, tileC, func(r0, r1, c0, c1 int) {
		tc := c0 / tileC
		colCnt := ds.rowColCnt[tc*n : (tc+1)*n]
		// c0 is a multiple of tileC (and hence of 64), so the bitmap words
		// [w0,w1) cover exactly the columns of this tile: bits past c1 only
		// exist in the last tile's final word and are never set.
		w0 := c0 / 64
		w1 := (c1 + 63) / 64
		for i := r0; i < r1; i++ {
			copy(dst.A[i*n+c0:i*n+c1], d.A[i*n+c0:i*n+c1])
		}
		for i := r0; i < r1; i++ {
			irow := d.A[i*n : (i+1)*n]
			orow := dst.A[i*n+c0 : i*n+c1]
			ibits := ds.changed[i*words : (i+1)*words]
			// Rows k whose (i,k) entry improved: full relax against row k.
			for wi, w := range ibits {
				for w != 0 {
					k := wi*64 + mbits.TrailingZeros64(w)
					w &= w - 1
					if v := irow[k]; v < inf {
						relax1(orow, d.A[k*n+c0:k*n+c1], v)
					}
				}
			}
			// Rows k that improved somewhere in this column range: relax
			// only the improved entries of row k ((i,k) unchanged, so the
			// remaining candidates of that row were already applied). When
			// most of the row's tile span improved, a full-width relax1 is
			// cheaper than walking the bitmap — the extra triples have both
			// factors unchanged, so they are exact no-ops.
			for k := 0; k < n; k++ {
				cnt := colCnt[k]
				if cnt == 0 {
					continue
				}
				v := irow[k]
				if v == inf || ibits[k/64]&(1<<uint(k%64)) != 0 {
					continue
				}
				if int(cnt)*3 >= c1-c0 {
					relax1(orow, d.A[k*n+c0:k*n+c1], v)
					continue
				}
				krow := d.A[k*n:]
				drow := dst.A[i*n:]
				kbits := ds.changed[k*words+w0 : k*words+w1]
				base := w0 * 64
				for wi, w := range kbits {
					for w != 0 {
						j := base + wi*64 + mbits.TrailingZeros64(w)
						w &= w - 1
						if s := v + krow[j]; s < drow[j] {
							drow[j] = s
						}
					}
				}
			}
		}
		st.AddWork(int64(r1-r0) * int64(n) * int64(c1-c0))
	})
}

// ClosureNaive is the pre-tiling closure (naive products, one fresh matrix
// per squaring step), kept as the equivalence reference and benchmark
// baseline. Same early-exit and negative-cycle detection order as Closure.
func ClosureNaive(d *Dense, ex *pram.Executor, st *pram.Stats) error {
	if d.R != d.C {
		panic("matrix: Closure requires a square matrix")
	}
	n := d.R
	for i := 0; i < n; i++ {
		d.SetMin(i, i, 0)
	}
	if err := checkDiagonal(d); err != nil {
		return err
	}
	for span := 1; span < n; span *= 2 {
		prod := MulMinPlusNaive(d, d, ex, st)
		changed := false
		for i, v := range prod.A {
			if v < d.A[i] {
				d.A[i] = v
				changed = true
			}
		}
		if !changed {
			break
		}
		if err := checkDiagonal(d); err != nil {
			return err
		}
	}
	return nil
}

// FloydWarshall computes the min-plus closure of d in place with the
// Floyd-Warshall recurrence. Work n³; n rounds (each k-phase is one parallel
// round over all pairs). Returns ErrNegativeCycle if a diagonal entry goes
// negative.
func FloydWarshall(d *Dense, ex *pram.Executor, st *pram.Stats) error {
	if d.R != d.C {
		panic("matrix: FloydWarshall requires a square matrix")
	}
	if ex == nil {
		ex = pram.Sequential
	}
	n := d.R
	for i := 0; i < n; i++ {
		d.SetMin(i, i, 0)
	}
	for k := 0; k < n; k++ {
		krow := d.A[k*n : (k+1)*n]
		ex.ForChunked(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dik := d.A[i*n+k]
				if math.IsInf(dik, 1) {
					continue
				}
				irow := d.A[i*n : (i+1)*n]
				for j, kv := range krow {
					if s := dik + kv; s < irow[j] {
						irow[j] = s
					}
				}
			}
		})
		st.AddWork(int64(n) * int64(n))
		if d.A[k*n+k] < 0 {
			return ErrNegativeCycle
		}
	}
	return checkDiagonal(d)
}

func checkDiagonal(d *Dense) error {
	n := d.R
	for i := 0; i < n; i++ {
		if d.A[i*n+i] < 0 {
			return ErrNegativeCycle
		}
	}
	return nil
}
