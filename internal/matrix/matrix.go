// Package matrix provides dense min-plus (tropical) matrices: the inner
// kernel of the paper's all-pairs computations. Algorithm 4.1 runs min-plus
// closures on separator graphs H_S and rectangular 3-limited products on H;
// Algorithm 4.3 runs one min-plus squaring step per node per iteration.
//
// Work is counted as one unit per (i,k,j) triple inspected; parallel time is
// counted as rounds by the callers (see internal/pram).
package matrix

import (
	"errors"
	"math"

	"sepsp/internal/pram"
)

// ErrNegativeCycle reports that a closure computation found a negative-weight
// cycle (a negative diagonal entry).
var ErrNegativeCycle = errors.New("matrix: negative-weight cycle detected")

// Dense is a rectangular dense matrix over the min-plus semiring. Missing
// entries are +Inf.
type Dense struct {
	R, C int
	A    []float64 // row-major, length R*C
}

// New returns an R×C matrix with all entries +Inf.
func New(r, c int) *Dense {
	a := make([]float64, r*c)
	inf := math.Inf(1)
	for i := range a {
		a[i] = inf
	}
	return &Dense{R: r, C: c, A: a}
}

// NewSquare returns an n×n matrix with +Inf off-diagonal and 0 diagonal.
func NewSquare(n int) *Dense {
	d := New(n, n)
	for i := 0; i < n; i++ {
		d.A[i*n+i] = 0
	}
	return d
}

// At returns entry (i, j).
func (d *Dense) At(i, j int) float64 { return d.A[i*d.C+j] }

// Set assigns entry (i, j).
func (d *Dense) Set(i, j int, v float64) { d.A[i*d.C+j] = v }

// SetMin lowers entry (i, j) to v if v is smaller.
func (d *Dense) SetMin(i, j int, v float64) {
	if p := &d.A[i*d.C+j]; v < *p {
		*p = v
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := &Dense{R: d.R, C: d.C, A: make([]float64, len(d.A))}
	copy(c.A, d.A)
	return c
}

// Equal reports exact equality of shape and entries (Inf == Inf).
func (d *Dense) Equal(o *Dense) bool {
	if d.R != o.R || d.C != o.C {
		return false
	}
	for i, v := range d.A {
		if v != o.A[i] && !(math.IsInf(v, 1) && math.IsInf(o.A[i], 1)) {
			return false
		}
	}
	return true
}

// MinInPlace sets d = min(d, o) elementwise.
func (d *Dense) MinInPlace(o *Dense) {
	if d.R != o.R || d.C != o.C {
		panic("matrix: shape mismatch")
	}
	for i, v := range o.A {
		if v < d.A[i] {
			d.A[i] = v
		}
	}
}

// MulMinPlus computes the min-plus product a⊗b into a fresh matrix,
// parallelized over result rows. Work: a.R*a.C*b.C triples, counted into st.
// Rounds are NOT counted here: matrix kernels only count work, and callers
// account parallel rounds analytically (one product is MulRounds(k) PRAM
// rounds via a balanced min reduction), because concurrent kernels on
// different tree nodes share one round, not one per kernel.
func MulMinPlus(a, b *Dense, ex *pram.Executor, st *pram.Stats) *Dense {
	if a.C != b.R {
		panic("matrix: inner dimension mismatch")
	}
	if ex == nil {
		ex = pram.Sequential
	}
	out := New(a.R, b.C)
	k, c := a.C, b.C
	ex.ForChunked(a.R, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.A[i*k : (i+1)*k]
			orow := out.A[i*c : (i+1)*c]
			for kk, av := range arow {
				if math.IsInf(av, 1) {
					continue
				}
				brow := b.A[kk*c : (kk+1)*c]
				for j, bv := range brow {
					if s := av + bv; s < orow[j] {
						orow[j] = s
					}
				}
			}
		}
		st.AddWork(int64(hi-lo) * int64(k) * int64(c))
	})
	return out
}

// MulRounds returns the PRAM rounds charged for one min-plus product with
// inner dimension k: ceil(log2 k) + 1 (balanced min reduction).
func MulRounds(k int) int64 {
	r := int64(1)
	for ; k > 1; k >>= 1 {
		r++
	}
	return r
}

// SquareStep performs one path-doubling step in place: d = min(d, d⊗d).
// d must be square. It reports whether any entry strictly improved.
func SquareStep(d *Dense, ex *pram.Executor, st *pram.Stats) bool {
	if d.R != d.C {
		panic("matrix: SquareStep requires a square matrix")
	}
	prod := MulMinPlus(d, d, ex, st)
	changed := false
	for i, v := range prod.A {
		if v < d.A[i] {
			d.A[i] = v
			changed = true
		}
	}
	return changed
}

// Closure computes the reflexive-transitive min-plus closure of the square
// matrix d in place by repeated squaring: diagonal entries are first lowered
// to 0, then ceil(log2 n) squaring steps run (with early exit when a step
// changes nothing). If any diagonal entry becomes negative, the computation
// stops and ErrNegativeCycle is returned.
//
// Work O(n³ log n), rounds O(log² n) — the bound the paper quotes for
// implementing step ii of Algorithm 4.1 with path doubling.
func Closure(d *Dense, ex *pram.Executor, st *pram.Stats) error {
	if d.R != d.C {
		panic("matrix: Closure requires a square matrix")
	}
	n := d.R
	for i := 0; i < n; i++ {
		d.SetMin(i, i, 0)
	}
	if err := checkDiagonal(d); err != nil {
		return err
	}
	for span := 1; span < n; span *= 2 {
		if !SquareStep(d, ex, st) {
			break
		}
		if err := checkDiagonal(d); err != nil {
			return err
		}
	}
	return nil
}

// FloydWarshall computes the min-plus closure of d in place with the
// Floyd-Warshall recurrence. Work n³; n rounds (each k-phase is one parallel
// round over all pairs). Returns ErrNegativeCycle if a diagonal entry goes
// negative.
func FloydWarshall(d *Dense, ex *pram.Executor, st *pram.Stats) error {
	if d.R != d.C {
		panic("matrix: FloydWarshall requires a square matrix")
	}
	if ex == nil {
		ex = pram.Sequential
	}
	n := d.R
	for i := 0; i < n; i++ {
		d.SetMin(i, i, 0)
	}
	for k := 0; k < n; k++ {
		krow := d.A[k*n : (k+1)*n]
		ex.ForChunked(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dik := d.A[i*n+k]
				if math.IsInf(dik, 1) {
					continue
				}
				irow := d.A[i*n : (i+1)*n]
				for j, kv := range krow {
					if s := dik + kv; s < irow[j] {
						irow[j] = s
					}
				}
			}
		})
		st.AddWork(int64(n) * int64(n))
		if d.A[k*n+k] < 0 {
			return ErrNegativeCycle
		}
	}
	return checkDiagonal(d)
}

func checkDiagonal(d *Dense) error {
	n := d.R
	for i := 0; i < n; i++ {
		if d.A[i*n+i] < 0 {
			return ErrNegativeCycle
		}
	}
	return nil
}
