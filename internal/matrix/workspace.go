package matrix

import (
	"math"
	"sync"
	"sync/atomic"
)

// Workspace is an arena of reusable Dense backing buffers for the build
// path's kernel suite. One augmentation run (Alg 4.1 / Alg 4.3) threads a
// single Workspace through all of its per-node products, closures, and leaf
// scratch, so the run performs O(tree-nodes) slab allocations instead of one
// allocation per min-plus product or per path-doubling step.
//
// Buffers are pooled by power-of-two capacity class, not exact shape: a slab
// released by a 31×31 separator closure is reslices-compatible with the
// 17×42 rectangular product of a sibling node, so reuse survives the highly
// irregular shape mix of a real decomposition tree. Get hands out a Dense
// whose contents are unspecified — every ...Into kernel fully overwrites its
// destination — and GetInf clears to +Inf for callers that relax into the
// buffer incrementally.
//
// A Workspace is safe for concurrent use: tree nodes of one level are
// processed in parallel and share the run's workspace. A nil *Workspace is
// also valid and degrades to plain allocation (Get allocates, Put discards),
// so optional call sites need no branching.
type Workspace struct {
	mu     sync.Mutex
	free   map[int][]*Dense // capacity class (power of two) -> free matrices
	allocs atomic.Int64     // fresh slab allocations (telemetry for tests)
	reuses atomic.Int64     // Gets served from the free lists
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[int][]*Dense)}
}

// capClass returns the power-of-two capacity class holding n elements.
func capClass(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Get returns an r×c matrix with unspecified contents, reusing a pooled slab
// when one of sufficient capacity class is free.
func (w *Workspace) Get(r, c int) *Dense {
	n := r * c
	if w == nil {
		return &Dense{R: r, C: c, A: make([]float64, n)}
	}
	class := capClass(n)
	w.mu.Lock()
	list := w.free[class]
	if len(list) > 0 {
		d := list[len(list)-1]
		w.free[class] = list[:len(list)-1]
		w.mu.Unlock()
		w.reuses.Add(1)
		d.R, d.C = r, c
		d.A = d.A[:n]
		return d
	}
	w.mu.Unlock()
	w.allocs.Add(1)
	return &Dense{R: r, C: c, A: make([]float64, n, class)}
}

// GetInf returns an r×c matrix with every entry +Inf.
func (w *Workspace) GetInf(r, c int) *Dense {
	d := w.Get(r, c)
	inf := math.Inf(1)
	for i := range d.A {
		d.A[i] = inf
	}
	return d
}

// GetSquare returns an n×n matrix with +Inf off-diagonal and 0 diagonal.
func (w *Workspace) GetSquare(n int) *Dense {
	d := w.GetInf(n, n)
	for i := 0; i < n; i++ {
		d.A[i*n+i] = 0
	}
	return d
}

// Put releases d back to the workspace for reuse. The caller must not touch
// d afterwards. Put accepts matrices from any source (capacity is classified
// conservatively), and a nil receiver or nil matrix is a no-op.
func (w *Workspace) Put(d *Dense) {
	if w == nil || d == nil || cap(d.A) == 0 {
		return
	}
	// Classify by the largest power of two not exceeding the capacity, so a
	// Get of that class can always reslice within cap.
	class := 1
	for class<<1 <= cap(d.A) {
		class <<= 1
	}
	d.A = d.A[:0]
	w.mu.Lock()
	w.free[class] = append(w.free[class], d)
	w.mu.Unlock()
}

// Allocs returns the number of fresh slab allocations performed so far — the
// quantity the build-path allocation regression pins to O(tree-nodes).
func (w *Workspace) Allocs() int64 {
	if w == nil {
		return 0
	}
	return w.allocs.Load()
}

// Reuses returns the number of Gets served from the free lists.
func (w *Workspace) Reuses() int64 {
	if w == nil {
		return 0
	}
	return w.reuses.Load()
}
