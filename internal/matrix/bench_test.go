package matrix

import (
	"math/rand"
	"testing"

	"sepsp/internal/pram"
)

// benchMatrix builds a deterministic n×n min-plus matrix with ~30% finite
// entries — dense enough that the closure runs its full doubling schedule,
// sparse enough that the +Inf panel skipping matters.
func benchMatrix(n int) *Dense {
	rng := rand.New(rand.NewSource(42))
	return randomSquare(rng, n, 0.3, 0.1, 10)
}

func benchMul(b *testing.B, n int, tiled bool) {
	a := benchMatrix(n)
	c := benchMatrix(n)
	dst := New(n, n)
	b.SetBytes(int64(n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tiled {
			MulMinPlusInto(dst, a, c, pram.Sequential, nil)
		} else {
			dst = MulMinPlusNaive(a, c, pram.Sequential, nil)
		}
	}
	sink = dst.A[0]
}

var sink float64

func BenchmarkMulMinPlus256(b *testing.B)      { benchMul(b, 256, true) }
func BenchmarkMulMinPlus256Naive(b *testing.B) { benchMul(b, 256, false) }

func benchClosure(b *testing.B, n int, tiled bool) {
	src := benchMatrix(n)
	d := New(n, n)
	ws := NewWorkspace()
	b.SetBytes(int64(n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(d.A, src.A)
		d.R, d.C = n, n
		var err error
		if tiled {
			err = ClosureWS(d, ws, pram.Sequential, nil)
		} else {
			err = ClosureNaive(d, pram.Sequential, nil)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	sink = d.A[0]
}

// BenchmarkClosure256 vs BenchmarkClosure256Naive is the kernel-level
// speedup target of the build-performance work (see DESIGN.md): the tiled
// ping-pong closure must run ≥2x faster single-threaded than the naive
// row-parallel closure on a 256×256 matrix.
func BenchmarkClosure256(b *testing.B)      { benchClosure(b, 256, true) }
func BenchmarkClosure256Naive(b *testing.B) { benchClosure(b, 256, false) }

func BenchmarkClosure512(b *testing.B)      { benchClosure(b, 512, true) }
func BenchmarkClosure512Naive(b *testing.B) { benchClosure(b, 512, false) }

func BenchmarkSquareStepInto256(b *testing.B) {
	d := benchMatrix(256)
	dst := New(256, 256)
	b.SetBytes(256 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquareStepInto(dst, d, pram.Sequential, nil)
	}
	sink = dst.A[0]
}
