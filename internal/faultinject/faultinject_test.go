package faultinject

import (
	"testing"
	"time"
)

func TestDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 7, Sites: map[string]SiteConfig{
		SitePramWorker: {PanicPerMille: 100, DelayPerMille: 200, CancelPerMille: 50},
	}}
	a, b := NewSeeded(cfg), NewSeeded(cfg)
	for seq := uint64(1); seq <= 2000; seq++ {
		if fa, fb := a.Decide(SitePramWorker, seq), b.Decide(SitePramWorker, seq); fa != fb {
			t.Fatalf("seq %d: %v vs %v with equal seeds", seq, fa, fb)
		}
	}
	// A different seed must produce a different schedule somewhere.
	c := NewSeeded(Config{Seed: 8, Sites: cfg.Sites})
	same := true
	for seq := uint64(1); seq <= 2000; seq++ {
		if a.Decide(SitePramWorker, seq) != c.Decide(SitePramWorker, seq) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 drew identical 2000-call schedules")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	inj := NewSeeded(Config{Seed: 42, Sites: map[string]SiteConfig{
		"x": {PanicPerMille: 100, DelayPerMille: 0, CancelPerMille: 100},
	}})
	n := 10000
	var panics, cancels int
	for i := 0; i < n; i++ {
		switch inj.Decide("x", uint64(i+1)) {
		case Panic:
			panics++
		case Cancel:
			cancels++
		case Delay:
			t.Fatal("delay fired with zero delay rate")
		}
	}
	for name, got := range map[string]int{"panic": panics, "cancel": cancels} {
		if got < n/20 || got > n/5 { // 10% nominal; accept [5%, 20%]
			t.Fatalf("%s fired %d/%d times, far from the configured 10%%", name, got, n)
		}
	}
}

func TestFirePanicsWithInjected(t *testing.T) {
	inj := NewSeeded(Config{Seed: 1, Sites: map[string]SiteConfig{
		"always": {PanicPerMille: 1000},
	}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic at a 100% panic site")
		}
		if !IsInjected(r) {
			t.Fatalf("panic value %v is not *Injected", r)
		}
		if p, _, _ := inj.Fired("always"); p != 1 {
			t.Fatalf("fired panic count = %d, want 1", p)
		}
	}()
	inj.Fire("always")
}

func TestUnknownSiteIsNoop(t *testing.T) {
	inj := NewSeeded(Config{Seed: 1})
	if f := inj.Fire("nowhere"); f != None {
		t.Fatalf("unknown site fired %v", f)
	}
	if inj.Calls("nowhere") != 0 {
		t.Fatal("unknown site recorded calls")
	}
}

func TestDelayFires(t *testing.T) {
	inj := NewSeeded(Config{
		Seed:  1,
		Delay: time.Millisecond,
		Sites: map[string]SiteConfig{"d": {DelayPerMille: 1000}},
	})
	start := time.Now()
	if f := inj.Fire("d"); f != Delay {
		t.Fatalf("fault = %v, want Delay", f)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay fault did not sleep")
	}
}

func TestPerSiteDelayOverride(t *testing.T) {
	inj := NewSeeded(Config{
		Seed:  1,
		Delay: time.Microsecond, // global default, overridden below
		Sites: map[string]SiteConfig{"slow": {DelayPerMille: 1000, Delay: 2 * time.Millisecond}},
	})
	start := time.Now()
	if f := inj.Fire("slow"); f != Delay {
		t.Fatalf("fault = %v, want Delay", f)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("per-site delay override not applied: slept %v, want ≥ 2ms", elapsed)
	}
}

func TestToggleSuppressesAndRestores(t *testing.T) {
	inj := NewSeeded(Config{
		Seed:  1,
		Sites: map[string]SiteConfig{"always": {PanicPerMille: 1000}},
	})
	tog := NewToggle(inj)
	tog.Disable("always")
	if f := tog.Fire("always"); f != None {
		t.Fatalf("disabled site fired %v", f)
	}
	if inj.Calls("always") != 0 {
		t.Fatal("disabled site consumed a sequence draw from the inner injector")
	}
	tog.Enable("always")
	func() {
		defer func() {
			if v := recover(); !IsInjected(v) {
				t.Fatalf("re-enabled site did not panic (recovered %v)", v)
			}
		}()
		tog.Fire("always")
	}()
	if inj.Calls("always") != 1 {
		t.Fatalf("inner calls = %d, want 1", inj.Calls("always"))
	}
}

func TestToggleOtherSitesUnaffected(t *testing.T) {
	inj := NewSeeded(Config{
		Seed: 1,
		Sites: map[string]SiteConfig{
			"a": {DelayPerMille: 1000},
			"b": {DelayPerMille: 1000},
		},
	})
	tog := NewToggle(inj)
	tog.Disable("a")
	if f := tog.Fire("b"); f != Delay {
		t.Fatalf("site b fired %v despite only a being disabled", f)
	}
}
