// Package faultinject is a deterministic, seed-driven fault-injection
// harness for the serving stack. Instrumented layers (the pram executor's
// worker boundaries, the engine's Bellman-Ford phase boundaries, the
// server's wave dispatcher) call Fire at named sites; the injector decides —
// purely as a function of (seed, site, per-site call sequence) — whether to
// inject a panic, a delay, or to signal that the call site should cancel a
// context.
//
// Production pays nothing: call sites hold a nil Injector interface and the
// hook is one predictable nil-check branch. Decisions are deterministic per
// (seed, site, sequence) regardless of goroutine interleaving, so a chaos
// run's fault mix is reproducible even though which request absorbs which
// fault depends on scheduling.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is the action decided for one Fire call.
type Fault uint8

const (
	// None: no fault; the call proceeds normally.
	None Fault = iota
	// Panic: Fire panics with a *Injected value.
	Panic
	// Delay: Fire sleeps the configured delay before returning.
	Delay
	// Cancel: returned to the call site, which owns the context to cancel
	// (Fire cannot cancel what it cannot see).
	Cancel
)

func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Cancel:
		return "cancel"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Canonical site names of the instrumented boundaries.
const (
	// SitePramWorker fires at the start of each executor worker chunk.
	SitePramWorker = "pram.worker"
	// SiteQueryPhase fires between Bellman-Ford phases of a query.
	SiteQueryPhase = "core.phase"
	// SiteServerWave fires before the server dispatcher serves a wave.
	SiteServerWave = "server.wave"
	// SiteManagerRebuild fires at the start of a Manager reweighting
	// rebuild — an injected panic there must latch the rebuild-failure
	// path while the old epoch keeps serving.
	SiteManagerRebuild = "manager.rebuild"
	// SiteClientCancel is consulted by load generators to decide which
	// requests to cancel while queued.
	SiteClientCancel = "client.cancel"
)

// Injector is the hook interface held by instrumented layers. A nil
// Injector is the production no-op (call sites guard with one nil check).
type Injector interface {
	// Fire applies the decided fault for the next call at site: it panics
	// with a *Injected for Panic, sleeps for Delay, and returns the
	// decision in all cases (Cancel is returned, never applied — the call
	// site owns the context).
	Fire(site string) Fault
}

// Injected is the panic value raised by injected panics, so recovery layers
// can distinguish injected faults from real bugs.
type Injected struct {
	Site string // site that fired
	Seq  uint64 // per-site call sequence number that drew the fault
}

func (i *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (seq %d)", i.Site, i.Seq)
}

// IsInjected reports whether a recovered panic value originated from this
// package.
func IsInjected(v any) bool {
	_, ok := v.(*Injected)
	return ok
}

// SiteConfig is the per-site fault mix in permille of Fire calls. The three
// rates are evaluated in order panic, delay, cancel over one uniform draw,
// so their sum must be ≤ 1000.
type SiteConfig struct {
	PanicPerMille  uint32
	DelayPerMille  uint32
	CancelPerMille uint32
	// Delay overrides Config.Delay for this site when positive — e.g. a
	// long stall at the wave boundary to drive an overload drill while the
	// rebuild site keeps its short default.
	Delay time.Duration
}

// Config configures a seeded injector.
type Config struct {
	// Seed drives every decision; equal seeds reproduce equal per-site
	// decision sequences.
	Seed int64
	// Delay is the sleep applied when a Delay fault fires (default 50µs).
	Delay time.Duration
	// Sites maps site names to their fault mix; sites absent from the map
	// never fault.
	Sites map[string]SiteConfig
}

// Seeded is the deterministic Injector implementation. It is safe for
// concurrent use; the decision for the n-th Fire call at a site depends only
// on (seed, site, n).
type Seeded struct {
	seed  int64
	delay time.Duration
	sites map[string]*siteState
}

type siteState struct {
	cfg  SiteConfig
	hash uint64
	seq  atomic.Uint64
	// fired counters, indexed by Fault, for assertions and summaries.
	fired [4]atomic.Uint64
}

// NewSeeded returns a deterministic injector for the configured sites.
func NewSeeded(cfg Config) *Seeded {
	delay := cfg.Delay
	if delay <= 0 {
		delay = 50 * time.Microsecond
	}
	s := &Seeded{seed: cfg.Seed, delay: delay, sites: make(map[string]*siteState, len(cfg.Sites))}
	for name, sc := range cfg.Sites {
		s.sites[name] = &siteState{cfg: sc, hash: fnv64(name)}
	}
	return s
}

// Fire implements Injector.
func (s *Seeded) Fire(site string) Fault {
	st := s.sites[site]
	if st == nil {
		return None
	}
	seq := st.seq.Add(1)
	f := decide(uint64(s.seed), st.hash, seq, st.cfg)
	st.fired[f].Add(1)
	switch f {
	case Panic:
		panic(&Injected{Site: site, Seq: seq})
	case Delay:
		d := s.delay
		if st.cfg.Delay > 0 {
			d = st.cfg.Delay
		}
		time.Sleep(d)
	}
	return f
}

// Decide returns the fault the n-th Fire call at site will draw, without
// side effects — the pure decision function, exposed so tests and load
// generators can predict or replay a schedule.
func (s *Seeded) Decide(site string, seq uint64) Fault {
	st := s.sites[site]
	if st == nil {
		return None
	}
	return decide(uint64(s.seed), st.hash, seq, st.cfg)
}

// Fired returns how many faults of each kind have fired at site.
func (s *Seeded) Fired(site string) (panics, delays, cancels uint64) {
	st := s.sites[site]
	if st == nil {
		return 0, 0, 0
	}
	return st.fired[Panic].Load(), st.fired[Delay].Load(), st.fired[Cancel].Load()
}

// Calls returns the number of Fire calls observed at site.
func (s *Seeded) Calls(site string) uint64 {
	st := s.sites[site]
	if st == nil {
		return 0
	}
	return st.seq.Load()
}

// Toggle wraps an Injector with per-site runtime switches, so a drill can
// move between phases (inject wave latency now, rebuild failures later)
// over one shared injector without rebuilding the call sites' references.
// Sites start enabled; a disabled site's Fire returns None without
// consuming a sequence draw from the wrapped injector. Safe for concurrent
// use.
type Toggle struct {
	inner    Injector
	disabled sync.Map // site name → struct{} while disabled
}

// NewToggle wraps inner (which must be non-nil) with all sites enabled.
func NewToggle(inner Injector) *Toggle {
	return &Toggle{inner: inner}
}

// Enable re-enables faults at site.
func (t *Toggle) Enable(site string) { t.disabled.Delete(site) }

// Disable suppresses faults at site until Enable.
func (t *Toggle) Disable(site string) { t.disabled.Store(site, struct{}{}) }

// Fire implements Injector.
func (t *Toggle) Fire(site string) Fault {
	if _, off := t.disabled.Load(site); off {
		return None
	}
	return t.inner.Fire(site)
}

// decide draws uniformly in [0,1000) from a splitmix64 hash of
// (seed, site, seq) and buckets it by the configured rates.
func decide(seed, siteHash, seq uint64, cfg SiteConfig) Fault {
	u := splitmix64(seed ^ siteHash ^ (seq * 0x9e3779b97f4a7c15))
	draw := uint32(u % 1000)
	if draw < cfg.PanicPerMille {
		return Panic
	}
	draw -= cfg.PanicPerMille
	if draw < cfg.DelayPerMille {
		return Delay
	}
	draw -= cfg.DelayPerMille
	if draw < cfg.CancelPerMille {
		return Cancel
	}
	return None
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
