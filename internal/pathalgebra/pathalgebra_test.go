package pathalgebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/graph"
	"sepsp/internal/graph/gen"
	"sepsp/internal/semiring"
	"sepsp/internal/separator"
)

// refClosure computes the reference single-source row with a generic
// Bellman-Ford run to fixpoint.
func refClosure[T any](sr semiring.Semiring[T], n int, edges []Edge[T], src int) []T {
	dist := make([]T, n)
	for i := range dist {
		dist[i] = sr.Zero()
	}
	dist[src] = sr.One()
	for it := 0; it <= n; it++ {
		changed := false
		for _, ed := range edges {
			nv := sr.Plus(dist[ed.To], sr.Times(dist[ed.From], ed.W))
			if !sr.Eq(nv, dist[ed.To]) {
				dist[ed.To] = nv
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func gridInstance(t testing.TB, seed int64, wf func(*rand.Rand) float64) (int, []Edge[float64], *separator.Tree) {
	rng := rand.New(rand.NewSource(seed))
	w, h := 4+rng.Intn(5), 4+rng.Intn(5)
	grid := gen.NewGrid([]int{w, h}, gen.UnitWeights(), rng)
	var edges []Edge[float64]
	grid.G.Edges(func(from, to int, _ float64) bool {
		edges = append(edges, Edge[float64]{from, to, wf(rng)})
		return true
	})
	sk := graph.NewSkeleton(grid.G)
	tree, err := separator.Build(sk, &separator.CoordinateFinder{Coord: grid.Coord}, separator.Options{LeafSize: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return grid.G.N(), edges, tree
}

func checkSemiring[T any](t *testing.T, name string, sr semiring.Semiring[T],
	mk func(testing.TB, int64) (int, []Edge[T], *separator.Tree)) {
	f := func(seed int64) bool {
		n, edges, tree := mk(t, seed)
		eng, err := New(sr, n, edges, tree)
		if err != nil {
			t.Errorf("%s: New: %v", name, err)
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for trial := 0; trial < 3; trial++ {
			src := rng.Intn(n)
			want := refClosure(sr, n, edges, src)
			got := eng.SingleSource(src)
			for v := range want {
				if !sr.Eq(got[v], want[v]) {
					t.Errorf("%s seed=%d src=%d v=%d: got %v want %v", name, seed, src, v, got[v], want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestMinPlusGeneric(t *testing.T) {
	checkSemiring[float64](t, "minplus", semiring.MinPlus{}, func(tb testing.TB, seed int64) (int, []Edge[float64], *separator.Tree) {
		return gridInstance(tb, seed, func(rng *rand.Rand) float64 { return float64(1 + rng.Intn(9)) })
	})
}

func TestBottleneckGeneric(t *testing.T) {
	checkSemiring[float64](t, "bottleneck", semiring.Bottleneck{}, func(tb testing.TB, seed int64) (int, []Edge[float64], *separator.Tree) {
		return gridInstance(tb, seed, func(rng *rand.Rand) float64 { return float64(rng.Intn(100)) })
	})
}

func TestMinMaxGeneric(t *testing.T) {
	checkSemiring[float64](t, "minimax", semiring.MinMax{}, func(tb testing.TB, seed int64) (int, []Edge[float64], *separator.Tree) {
		return gridInstance(tb, seed, func(rng *rand.Rand) float64 { return float64(rng.Intn(100)) })
	})
}

func TestReliabilityGeneric(t *testing.T) {
	// Powers of 1/2 keep products exact, so Eq comparisons are safe.
	checkSemiring[float64](t, "reliability", semiring.Reliability{}, func(tb testing.TB, seed int64) (int, []Edge[float64], *separator.Tree) {
		return gridInstance(tb, seed, func(rng *rand.Rand) float64 {
			return 1.0 / float64(int(1)<<uint(rng.Intn(4)))
		})
	})
}

func TestBooleanGeneric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		g := gen.RandomDigraph(n, 2*n, gen.UnitWeights(), rng)
		var edges []Edge[bool]
		g.Edges(func(from, to int, _ float64) bool {
			edges = append(edges, Edge[bool]{from, to, true})
			return true
		})
		sk := graph.NewSkeleton(g)
		tree, err := separator.Build(sk, &separator.BFSFinder{}, separator.Options{LeafSize: 5})
		if err != nil {
			t.Errorf("Build: %v", err)
			return false
		}
		sr := semiring.Boolean{}
		eng, err := New[bool](sr, n, edges, tree)
		if err != nil {
			t.Errorf("New: %v", err)
			return false
		}
		src := rng.Intn(n)
		want := refClosure[bool](sr, n, edges, src)
		got := eng.SingleSource(src)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("seed=%d v=%d: %v vs %v", seed, v, got[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesMatchesSingleSource(t *testing.T) {
	n, edges, tree := gridInstance(t, 11, func(rng *rand.Rand) float64 { return float64(1 + rng.Intn(5)) })
	eng, err := New[float64](semiring.MinPlus{}, n, edges, tree)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []int{0, n / 2, n - 1}
	rows := eng.Sources(srcs)
	for i, s := range srcs {
		single := eng.SingleSource(s)
		for v := range single {
			if rows[i][v] != single[v] {
				t.Fatalf("src=%d v=%d", s, v)
			}
		}
	}
}

func TestShortcutCountPositive(t *testing.T) {
	n, edges, tree := gridInstance(t, 7, func(rng *rand.Rand) float64 { return 1 })
	eng, err := New[float64](semiring.MinPlus{}, n, edges, tree)
	if err != nil {
		t.Fatal(err)
	}
	if eng.ShortcutCount() == 0 {
		t.Fatal("no shortcuts generated")
	}
}
