// Package pathalgebra generalizes the separator engine to arbitrary
// selective semirings, realizing the paper's comment (iii): "Our algorithm
// is applicable to general path algebra problems over semirings." The same
// three-phase structure as the min-plus engine is used — per-leaf closures,
// Algorithm 4.1 node processing (H_S closure + 3-limited boundary step),
// and the Section 3.2 level-scheduled relaxation — but every min/+ is
// replaced by the semiring's Plus/Times.
//
// Requirements on the semiring: Plus idempotent (selective) and the closure
// of every cycle weight equal to One ("stable" semirings: min-plus with
// nonnegative cycles, boolean, bottleneck, reliability with probabilities
// ≤ 1, minimax). Under stability the Floyd-Warshall recurrence computes the
// exact path closure.
package pathalgebra

import (
	"fmt"

	"sepsp/internal/semiring"
	"sepsp/internal/separator"
)

// Edge is a directed edge with a semiring weight.
type Edge[T any] struct {
	From, To int
	W        T
}

// Engine is a preprocessed path-algebra oracle over one semiring.
type Engine[T any] struct {
	sr    semiring.Semiring[T]
	n     int
	tree  *separator.Tree
	edges []Edge[T] // original edges
	plus  []Edge[T] // shortcut edges E+

	// query schedule buckets (same structure as core.Schedule)
	same [][]Edge[T]
	desc [][]Edge[T]
	asc  [][]Edge[T]
	l    int
}

// dense is a tiny generic matrix over the semiring.
type dense[T any] struct {
	r, c int
	a    []T
}

func newDense[T any](sr semiring.Semiring[T], r, c int) *dense[T] {
	a := make([]T, r*c)
	zero := sr.Zero()
	for i := range a {
		a[i] = zero
	}
	return &dense[T]{r: r, c: c, a: a}
}

func (d *dense[T]) at(i, j int) T     { return d.a[i*d.c+j] }
func (d *dense[T]) set(i, j int, v T) { d.a[i*d.c+j] = v }

// closureFW computes the reflexive path closure in place.
func closureFW[T any](sr semiring.Semiring[T], d *dense[T]) {
	n := d.r
	one := sr.One()
	for i := 0; i < n; i++ {
		d.set(i, i, sr.Plus(d.at(i, i), one))
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.at(i, k)
			if sr.Eq(dik, sr.Zero()) {
				continue
			}
			for j := 0; j < n; j++ {
				d.set(i, j, sr.Plus(d.at(i, j), sr.Times(dik, d.at(k, j))))
			}
		}
	}
}

// mul computes the semiring product a⊗b.
func mul[T any](sr semiring.Semiring[T], a, b *dense[T]) *dense[T] {
	out := newDense(sr, a.r, b.c)
	for i := 0; i < a.r; i++ {
		for k := 0; k < a.c; k++ {
			aik := a.at(i, k)
			if sr.Eq(aik, sr.Zero()) {
				continue
			}
			for j := 0; j < b.c; j++ {
				out.set(i, j, sr.Plus(out.at(i, j), sr.Times(aik, b.at(k, j))))
			}
		}
	}
	return out
}

// New preprocesses a path-algebra instance: it runs the generic Algorithm
// 4.1 over the decomposition tree and builds the query schedule.
func New[T any](sr semiring.Semiring[T], n int, edges []Edge[T], tree *separator.Tree) (*Engine[T], error) {
	if tree.N() != n {
		return nil, fmt.Errorf("pathalgebra: tree built for %d vertices, graph has %d", tree.N(), n)
	}
	e := &Engine[T]{sr: sr, n: n, tree: tree, edges: edges}

	// Adjacency restricted to vertex subsets is needed repeatedly; build a
	// per-vertex out list once.
	out := make([][]Edge[T], n)
	for _, ed := range edges {
		out[ed.From] = append(out[ed.From], ed)
	}

	// Generic Algorithm 4.1, level by level from the leaves.
	byLevel := make([][]int, tree.Height+1)
	for i := range tree.Nodes {
		byLevel[tree.Nodes[i].Level] = append(byLevel[tree.Nodes[i].Level], i)
	}
	db := make([]*dense[T], len(tree.Nodes))
	bIdx := make([]map[int]int, len(tree.Nodes))
	type shortcut struct {
		u, v int
		w    T
	}
	var plusEdges []shortcut
	emit := func(set []int, d *dense[T], idxRows, idxCols []int) {
		for i, u := range set {
			for j, v := range set {
				if u == v {
					continue
				}
				w := d.at(idxRows[i], idxCols[j])
				if !e.sr.Eq(w, e.sr.Zero()) {
					plusEdges = append(plusEdges, shortcut{u, v, w})
				}
			}
		}
	}
	iota := func(k int) []int {
		s := make([]int, k)
		for i := range s {
			s[i] = i
		}
		return s
	}
	for level := tree.Height; level >= 0; level-- {
		for _, id := range byLevel[level] {
			nd := &tree.Nodes[id]
			if nd.IsLeaf() {
				idx := make(map[int]int, len(nd.V))
				for i, v := range nd.V {
					idx[v] = i
				}
				full := newDense(sr, len(nd.V), len(nd.V))
				for _, v := range nd.V {
					for _, ed := range out[v] {
						if j, ok := idx[ed.To]; ok {
							full.set(idx[v], j, sr.Plus(full.at(idx[v], j), ed.W))
						}
					}
				}
				closureFW(sr, full)
				d := newDense(sr, len(nd.B), len(nd.B))
				for i, u := range nd.B {
					for j, v := range nd.B {
						d.set(i, j, full.at(idx[u], idx[v]))
					}
				}
				db[id] = d
				bIdx[id] = indexOf(nd.B)
				emit(nd.B, d, iota(len(nd.B)), iota(len(nd.B)))
				continue
			}
			c1, c2 := nd.Children[0], nd.Children[1]
			db1, db2, idx1, idx2 := db[c1], db[c2], bIdx[c1], bIdx[c2]
			S, B := nd.S, nd.B
			hs := newDense(sr, len(S), len(S))
			for i, u := range S {
				for j, v := range S {
					w := sr.Zero()
					if p, ok := idx1[u]; ok {
						if q, ok2 := idx1[v]; ok2 {
							w = sr.Plus(w, db1.at(p, q))
						}
					}
					if p, ok := idx2[u]; ok {
						if q, ok2 := idx2[v]; ok2 {
							w = sr.Plus(w, db2.at(p, q))
						}
					}
					hs.set(i, j, w)
				}
			}
			closureFW(sr, hs)
			sIdx := indexOf(S)
			wBS := newDense(sr, len(B), len(S))
			wSB := newDense(sr, len(S), len(B))
			for bi, bb := range B {
				if si, ok := sIdx[bb]; ok {
					for sj := range S {
						wBS.set(bi, sj, hs.at(si, sj))
						wSB.set(sj, bi, hs.at(sj, si))
					}
					continue
				}
				var d *dense[T]
				var p int
				var cidx map[int]int
				if q, ok := idx1[bb]; ok {
					d, p, cidx = db1, q, idx1
				} else if q, ok := idx2[bb]; ok {
					d, p, cidx = db2, q, idx2
				} else {
					return nil, fmt.Errorf("pathalgebra: boundary vertex %d lost at node %d", bb, id)
				}
				for sj, s := range S {
					q := cidx[s]
					wBS.set(bi, sj, d.at(p, q))
					wSB.set(sj, bi, d.at(q, p))
				}
			}
			dbt := mul(sr, mul(sr, wBS, hs), wSB)
			for i, u := range B {
				for j, v := range B {
					w := dbt.at(i, j)
					if p, ok := idx1[u]; ok {
						if q, ok2 := idx1[v]; ok2 {
							w = sr.Plus(w, db1.at(p, q))
						}
					}
					if p, ok := idx2[u]; ok {
						if q, ok2 := idx2[v]; ok2 {
							w = sr.Plus(w, db2.at(p, q))
						}
					}
					if u == v {
						w = sr.Plus(w, sr.One())
					}
					dbt.set(i, j, w)
				}
			}
			db[id] = dbt
			bIdx[id] = indexOf(B)
			emit(S, hs, iota(len(S)), iota(len(S)))
			emit(B, dbt, iota(len(B)), iota(len(B)))
		}
	}
	// Deduplicate shortcuts with Plus.
	dedup := make(map[int64]T)
	for _, sc := range plusEdges {
		k := int64(sc.u)<<32 | int64(uint32(sc.v))
		if old, ok := dedup[k]; ok {
			dedup[k] = sr.Plus(old, sc.w)
		} else {
			dedup[k] = sc.w
		}
	}
	for k, w := range dedup {
		e.plus = append(e.plus, Edge[T]{From: int(k >> 32), To: int(uint32(k)), W: w})
	}
	e.buildSchedule()
	return e, nil
}

func indexOf(vs []int) map[int]int {
	m := make(map[int]int, len(vs))
	for i, v := range vs {
		m[v] = i
	}
	return m
}

func (e *Engine[T]) buildSchedule() {
	h := e.tree.Height
	e.same = make([][]Edge[T], h+1)
	e.desc = make([][]Edge[T], h+1)
	e.asc = make([][]Edge[T], h+1)
	e.l = e.tree.MaxLeafSize() - 1
	if e.l < 0 {
		e.l = 0
	}
	bucket := func(ed Edge[T]) {
		lu, lv := e.tree.Level(ed.From), e.tree.Level(ed.To)
		if lu == separator.LevelUndef || lv == separator.LevelUndef {
			return
		}
		switch {
		case lu == lv:
			e.same[lu] = append(e.same[lu], ed)
		case lu > lv:
			e.desc[lu] = append(e.desc[lu], ed)
		default:
			e.asc[lv] = append(e.asc[lv], ed)
		}
	}
	for _, ed := range e.edges {
		bucket(ed)
	}
	for _, ed := range e.plus {
		bucket(ed)
	}
}

// ShortcutCount returns |E+| for this semiring instance.
func (e *Engine[T]) ShortcutCount() int { return len(e.plus) }

// Sources computes closure rows from several sources. Each source runs the
// same schedule; results match per-source SingleSource calls.
func (e *Engine[T]) Sources(srcs []int) [][]T {
	out := make([][]T, len(srcs))
	for i, s := range srcs {
		out[i] = e.SingleSource(s)
	}
	return out
}

// SingleSource computes the semiring closure row from src: for every v, the
// Plus over all src→v paths of the Times of their edge weights.
func (e *Engine[T]) SingleSource(src int) []T {
	sr := e.sr
	dist := make([]T, e.n)
	zero := sr.Zero()
	for i := range dist {
		dist[i] = zero
	}
	dist[src] = sr.One()
	relax := func(edges []Edge[T]) {
		for _, ed := range edges {
			dist[ed.To] = sr.Plus(dist[ed.To], sr.Times(dist[ed.From], ed.W))
		}
	}
	for i := 0; i < e.l; i++ {
		relax(e.edges)
	}
	for L := e.tree.Height; L >= 0; L-- {
		relax(e.same[L])
		relax(e.desc[L])
	}
	for L := 0; L <= e.tree.Height; L++ {
		relax(e.asc[L])
		relax(e.same[L])
	}
	for i := 0; i < e.l; i++ {
		relax(e.edges)
	}
	return dist
}
