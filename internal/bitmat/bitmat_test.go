package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/pram"
)

func randomMatrix(rng *rand.Rand, n int, density float64) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func naiveMul(a, b *Matrix) *Matrix {
	n := a.N()
	out := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if a.Get(i, k) && b.Get(k, j) {
					out.Set(i, j, true)
					break
				}
			}
		}
	}
	return out
}

func TestSetGet(t *testing.T) {
	m := New(130) // crosses word boundaries
	m.Set(0, 0, true)
	m.Set(129, 129, true)
	m.Set(63, 64, true)
	m.Set(64, 63, true)
	if !m.Get(0, 0) || !m.Get(129, 129) || !m.Get(63, 64) || !m.Get(64, 63) {
		t.Fatal("set bits not readable")
	}
	m.Set(63, 64, false)
	if m.Get(63, 64) {
		t.Fatal("clear failed")
	}
	if m.PopCount() != 3 {
		t.Fatalf("popcount=%d", m.PopCount())
	}
}

func TestMulMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(90)
		a := randomMatrix(rng, n, 0.15)
		b := randomMatrix(rng, n, 0.15)
		got := Mul(a, b, pram.NewExecutor(4), nil)
		return got.Equal(naiveMul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClosureMatchesDFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		adj := randomMatrix(rng, n, 2.0/float64(n))
		cl := Closure(adj, pram.Sequential, nil)
		// Reference: DFS from each vertex.
		for s := 0; s < n; s++ {
			seen := make([]bool, n)
			stack := []int{s}
			seen[s] = true
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for u := 0; u < n; u++ {
					if adj.Get(v, u) && !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
			for u := 0; u < n; u++ {
				if cl.Get(s, u) != seen[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityAndOr(t *testing.T) {
	i3 := Identity(3)
	if i3.PopCount() != 3 || !i3.Get(1, 1) || i3.Get(0, 1) {
		t.Fatal("identity wrong")
	}
	m := New(3)
	m.Set(0, 1, true)
	m.OrInPlace(i3)
	if !m.Get(0, 1) || !m.Get(2, 2) {
		t.Fatal("or failed")
	}
}

func TestMulCountsWork(t *testing.T) {
	st := &pram.Stats{}
	a := Identity(100)
	Mul(a, a, pram.Sequential, st)
	// 100 set bits, each ORs 2 words (ceil(100/64)).
	if st.Work() != 100*2 {
		t.Fatalf("work=%d", st.Work())
	}
}

func TestFromAdjacency(t *testing.T) {
	edges := func(fn func(from, to int, w float64) bool) {
		fn(0, 1, 1)
		fn(1, 2, 1)
	}
	m := FromAdjacency(3, edges)
	if !m.Get(0, 1) || !m.Get(1, 2) || m.Get(2, 0) {
		t.Fatal("adjacency wrong")
	}
}
