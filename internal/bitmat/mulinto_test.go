package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sepsp/internal/pram"
)

// TestMulIntoReuseAndDirtyDst: MulInto into a dirty, reused destination gives
// exactly the fresh-Mul result, with identical counted work, across sizes
// spanning the tile boundaries.
func TestMulIntoReuseAndDirtyDst(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{1, 63, 64, 65, tileRows, tileRows + 7, 300}
		n := sizes[rng.Intn(len(sizes))]
		a := randomMatrix(rng, n, 0.1)
		b := randomMatrix(rng, n, 0.1)
		dst := randomMatrix(rng, n, 0.5) // dirty prior contents must be ignored
		stI, stM := &pram.Stats{}, &pram.Stats{}
		MulInto(dst, a, b, pram.NewExecutor(3), stI)
		want := Mul(a, b, pram.Sequential, stM)
		return dst.Equal(want) && stI.Work() == stM.Work()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMulIntoDegenerate(t *testing.T) {
	// n == 0 must be a no-op, not a panic.
	MulInto(New(0), New(0), New(0), pram.Sequential, nil)
	// Nil executor defaults to sequential.
	a := Identity(5)
	dst := New(5)
	MulInto(dst, a, a, nil, nil)
	if !dst.Equal(a) {
		t.Fatal("identity product wrong with nil executor")
	}
}

func TestMulIntoPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	a := Identity(4)
	mustPanic("dimension mismatch", func() { MulInto(New(3), a, a, nil, nil) })
	mustPanic("aliasing", func() { MulInto(a, a, Identity(4), nil, nil) })
}

// TestClosurePingPongMatchesPowers: the two-buffer closure equals the naive
// (I+m)^n fixpoint computed by repeated fresh-matrix multiplication.
func TestClosurePingPongMatchesPowers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(70)
		m := randomMatrix(rng, n, 2.0/float64(n))
		got := Closure(m, pram.Sequential, nil)
		// Reference fixpoint: repeatedly square I+m with fresh matrices.
		ref := m.Clone()
		ref.OrInPlace(Identity(n))
		for {
			next := Mul(ref, ref, pram.Sequential, nil)
			next.OrInPlace(ref)
			if next.Equal(ref) {
				break
			}
			ref = next
		}
		return got.Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
