// Package bitmat implements dense boolean matrices packed 64 entries per
// word, with word-parallel multiplication. It is this repository's stand-in
// for the fast matrix multiplication M(r) the paper plugs into its
// reachability bounds: the asymptotic exponent differs (3 vs 2.37…) but the
// role in the algorithm — a fast boolean product for the path-doubling step —
// is identical, and the 64-way word parallelism makes it the practical choice
// on stock hardware.
package bitmat

import (
	"fmt"
	"math/bits"

	"sepsp/internal/pram"
)

// Matrix is an n×n boolean matrix, row-major, 64 columns per uint64 word.
type Matrix struct {
	n     int
	words int // words per row
	bits  []uint64
}

// New returns an n×n zero matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic("bitmat: negative size")
	}
	w := (n + 63) / 64
	return &Matrix{n: n, words: w, bits: make([]uint64, n*w)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v bool) {
	m.check(i, j)
	w := &m.bits[i*m.words+j/64]
	mask := uint64(1) << uint(j%64)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// Get returns entry (i, j).
func (m *Matrix) Get(i, j int) bool {
	m.check(i, j)
	return m.bits[i*m.words+j/64]&(1<<uint(j%64)) != 0
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of range n=%d", i, j, m.n))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.n)
	copy(c.bits, m.bits)
	return c
}

// Equal reports whether two matrices have identical dimension and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, w := range m.bits {
		if w != o.bits[i] {
			return false
		}
	}
	return true
}

// Row returns the packed words of row i (aliasing the matrix storage).
func (m *Matrix) Row(i int) []uint64 {
	return m.bits[i*m.words : (i+1)*m.words]
}

// OrInPlace sets m = m OR o.
func (m *Matrix) OrInPlace(o *Matrix) {
	if m.n != o.n {
		panic("bitmat: dimension mismatch")
	}
	for i := range m.bits {
		m.bits[i] |= o.bits[i]
	}
}

// PopCount returns the number of set entries.
func (m *Matrix) PopCount() int {
	c := 0
	for _, w := range m.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Mul computes the boolean product a*b into a fresh matrix, parallelized over
// rows by ex (one parallel round of depth O(n/64) word-ops per row element).
// Work counted into st: one unit per word OR performed.
//
// The inner loop uses the row-OR formulation: row i of the product is the OR
// of rows k of b over all k with a[i][k] set, which is cache-friendly and
// word-parallel.
func Mul(a, b *Matrix, ex *pram.Executor, st *pram.Stats) *Matrix {
	if a.n != b.n {
		panic("bitmat: dimension mismatch")
	}
	n := a.n
	out := New(n)
	if ex == nil {
		ex = pram.Sequential
	}
	ex.ForChunked(n, func(lo, hi int) {
		var work int64
		for i := lo; i < hi; i++ {
			dst := out.Row(i)
			arow := a.Row(i)
			for wi, w := range arow {
				for w != 0 {
					k := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					src := b.Row(k)
					for x := range dst {
						dst[x] |= src[x]
					}
					work += int64(len(dst))
				}
			}
		}
		st.AddWork(work)
	})
	return out
}

// Closure computes the reflexive-transitive closure (I + m)^n by repeated
// squaring: O(log n) products. The receiver is not modified.
func Closure(m *Matrix, ex *pram.Executor, st *pram.Stats) *Matrix {
	c := m.Clone()
	c.OrInPlace(Identity(m.n))
	for span := 1; span < m.n; span *= 2 {
		next := Mul(c, c, ex, st)
		if next.Equal(c) {
			return next
		}
		c = next
	}
	return c
}

// FromAdjacency builds the adjacency matrix of the directed graph given as an
// edge iterator (the graph package's Edges method signature).
func FromAdjacency(n int, edges func(fn func(from, to int, w float64) bool)) *Matrix {
	m := New(n)
	edges(func(from, to int, _ float64) bool {
		m.Set(from, to, true)
		return true
	})
	return m
}
