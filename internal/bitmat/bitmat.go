// Package bitmat implements dense boolean matrices packed 64 entries per
// word, with word-parallel multiplication. It is this repository's stand-in
// for the fast matrix multiplication M(r) the paper plugs into its
// reachability bounds: the asymptotic exponent differs (3 vs 2.37…) but the
// role in the algorithm — a fast boolean product for the path-doubling step —
// is identical, and the 64-way word parallelism makes it the practical choice
// on stock hardware.
package bitmat

import (
	"fmt"
	"math/bits"

	"sepsp/internal/pram"
)

// Matrix is an n×n boolean matrix, row-major, 64 columns per uint64 word.
type Matrix struct {
	n     int
	words int // words per row
	bits  []uint64
}

// New returns an n×n zero matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic("bitmat: negative size")
	}
	w := (n + 63) / 64
	return &Matrix{n: n, words: w, bits: make([]uint64, n*w)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v bool) {
	m.check(i, j)
	w := &m.bits[i*m.words+j/64]
	mask := uint64(1) << uint(j%64)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// Get returns entry (i, j).
func (m *Matrix) Get(i, j int) bool {
	m.check(i, j)
	return m.bits[i*m.words+j/64]&(1<<uint(j%64)) != 0
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of range n=%d", i, j, m.n))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.n)
	copy(c.bits, m.bits)
	return c
}

// Equal reports whether two matrices have identical dimension and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, w := range m.bits {
		if w != o.bits[i] {
			return false
		}
	}
	return true
}

// Row returns the packed words of row i (aliasing the matrix storage).
func (m *Matrix) Row(i int) []uint64 {
	return m.bits[i*m.words : (i+1)*m.words]
}

// OrInPlace sets m = m OR o.
func (m *Matrix) OrInPlace(o *Matrix) {
	if m.n != o.n {
		panic("bitmat: dimension mismatch")
	}
	for i := range m.bits {
		m.bits[i] |= o.bits[i]
	}
}

// PopCount returns the number of set entries.
func (m *Matrix) PopCount() int {
	c := 0
	for _, w := range m.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Tile sizes of the blocked boolean kernel: a tile is tileRows result rows
// by tileWords packed 64-column words (512 bytes of each touched row).
const (
	tileRows  = 128
	tileWords = 64
)

// Mul computes the boolean product a*b into a fresh matrix. Hot paths should
// prefer MulInto with a reused destination.
func Mul(a, b *Matrix, ex *pram.Executor, st *pram.Stats) *Matrix {
	out := New(a.n)
	MulInto(out, a, b, ex, st)
	return out
}

// MulInto computes the boolean product dst = a*b, parallelized over
// word-packed tiles of the result (one parallel round of depth O(n/64)
// word-ops per row element). dst must be n×n and must not alias a or b; its
// prior contents are ignored. Work counted into st: one unit per word OR
// performed — identical to the unblocked kernel, since every set bit of a
// ORs the same total number of destination words across the column tiles.
//
// The inner loop uses the row-OR formulation: row i of the product is the OR
// of rows k of b over all k with a[i][k] set, which is cache-friendly and
// word-parallel; column tiling keeps the destination words of a row block
// L1-resident while b's rows stream through.
func MulInto(dst, a, b *Matrix, ex *pram.Executor, st *pram.Stats) {
	if a.n != b.n || dst.n != a.n {
		panic("bitmat: dimension mismatch")
	}
	if dst == a || dst == b {
		panic("bitmat: MulInto destination aliases an operand")
	}
	n := a.n
	if n == 0 {
		return
	}
	if ex == nil {
		ex = pram.Sequential
	}
	ex.ForTiles2D(n, dst.words, tileRows, tileWords, func(r0, r1, w0, w1 int) {
		var work int64
		for i := r0; i < r1; i++ {
			drow := dst.bits[i*dst.words+w0 : i*dst.words+w1]
			for x := range drow {
				drow[x] = 0
			}
			arow := a.Row(i)
			for wi, w := range arow {
				for w != 0 {
					k := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					src := b.bits[k*b.words+w0 : k*b.words+w1]
					for x, sw := range src {
						drow[x] |= sw
					}
					work += int64(len(drow))
				}
			}
		}
		st.AddWork(work)
	})
}

// Closure computes the reflexive-transitive closure (I + m)^n by repeated
// squaring: O(log n) products ping-ponged between two buffers (exactly two
// matrix allocations regardless of the doubling count). The receiver is not
// modified.
func Closure(m *Matrix, ex *pram.Executor, st *pram.Stats) *Matrix {
	c := m.Clone()
	for i := 0; i < m.n; i++ {
		c.Set(i, i, true)
	}
	scratch := New(m.n)
	for span := 1; span < m.n; span *= 2 {
		MulInto(scratch, c, c, ex, st)
		if scratch.Equal(c) {
			return c
		}
		c, scratch = scratch, c
	}
	return c
}

// FromAdjacency builds the adjacency matrix of the directed graph given as an
// edge iterator (the graph package's Edges method signature).
func FromAdjacency(n int, edges func(fn func(from, to int, w float64) bool)) *Matrix {
	m := New(n)
	edges(func(from, to int, _ float64) bool {
		m.Set(from, to, true)
		return true
	})
	return m
}
