package admission

import "testing"

func TestBrownoutEngagesAtThreshold(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Threshold: 0.5, Alpha: 0.5})
	if b.Active() {
		t.Fatal("fresh detector must be inactive")
	}
	b.Note(true) // rate = 0.5
	if !b.Active() {
		t.Fatalf("rate %.2f >= threshold 0.5, want active", b.Rate())
	}
	if got := b.Entries(); got != 1 {
		t.Fatalf("Entries = %d, want 1", got)
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Threshold: 0.5, ExitThreshold: 0.25, Alpha: 0.5})
	b.Note(true) // 0.5: engage
	if !b.Active() {
		t.Fatal("want active")
	}
	b.Note(false) // 0.25: not strictly below exit threshold
	if !b.Active() {
		t.Fatalf("rate %.2f == exit 0.25, hysteresis must hold active", b.Rate())
	}
	b.Note(false) // 0.125 < 0.25: disengage
	if b.Active() {
		t.Fatalf("rate %.2f < exit 0.25, want inactive", b.Rate())
	}
	// Re-engaging counts a second entry.
	b.Note(true)
	b.Note(true)
	if !b.Active() || b.Entries() != 2 {
		t.Fatalf("active=%v entries=%d, want active with 2 entries", b.Active(), b.Entries())
	}
}

func TestBrownoutStaysQuietUnderLightShedding(t *testing.T) {
	b := NewBrownout(BrownoutConfig{}) // defaults: threshold 0.1, alpha 0.05
	// 2% shed rate stays well below the 10% knee.
	for i := 0; i < 500; i++ {
		b.Note(i%50 == 0)
	}
	if b.Active() {
		t.Fatalf("2%% shed rate (EWMA %.3f) must not engage brownout", b.Rate())
	}
}

func TestBrownoutDefaultExitHalvesThreshold(t *testing.T) {
	cfg := BrownoutConfig{Threshold: 0.2}.withDefaults()
	if cfg.ExitThreshold != 0.1 {
		t.Fatalf("default exit threshold = %v, want 0.1", cfg.ExitThreshold)
	}
}
