// Package admission is the serving stack's adaptive overload-control
// toolkit: a gradient concurrency limiter that sizes the effective
// in-flight window from measured latency, a priority queue with
// LIFO-within-class shedding, a brownout detector that decides when
// low-priority traffic should be answered degraded instead of refused, and
// a circuit breaker for operations that fail repeatedly.
//
// Everything here is deliberately clock-free or clock-injectable: the
// limiter and brownout detector are pure functions of the samples fed to
// them, and the breaker takes an injectable `now`, so every state
// transition is unit-testable with a deterministic schedule.
package admission

import (
	"math"
	"sync"
	"time"
)

// LimiterConfig tunes NewLimiter. The zero value uses the defaults noted on
// each field.
type LimiterConfig struct {
	// Initial is the starting limit (default Max, i.e. the limiter begins
	// wide open and only narrows when latency says so).
	Initial int
	// Min and Max bound the limit. Max is the hard ceiling the adaptive
	// limit can never exceed (default 1024); Min keeps a trickle of
	// admission alive so the limiter can observe recovery (default 2).
	Min, Max int
	// Smoothing is the exponential step toward each newly computed limit,
	// in (0, 1] (default 0.2). Smaller is steadier, larger is twitchier.
	Smoothing float64
	// Tolerance is how much the short-window RTT may exceed the no-load
	// baseline before the gradient starts shrinking the limit (default
	// 1.5: 50% latency growth is absorbed as normal jitter).
	Tolerance float64
	// DropBackoff is the multiplicative decrease applied per observed drop
	// (shed, eviction, or queue timeout), in (0, 1) (default 0.95).
	DropBackoff float64
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Min <= 0 {
		c.Min = 2
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.Initial <= 0 {
		c.Initial = c.Max
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = 0.2
	}
	if c.Tolerance < 1 {
		c.Tolerance = 1.5
	}
	if c.DropBackoff <= 0 || c.DropBackoff >= 1 {
		c.DropBackoff = 0.95
	}
	return c
}

// Limiter adapts an effective concurrency limit from observed request
// round-trip times, in the spirit of gradient/AIMD congestion control: it
// maintains a slow-moving no-load RTT baseline and a fast-moving recent
// RTT, and scales the limit by their ratio. When recent latency stays
// within Tolerance of the baseline the limit grows additively (probing for
// headroom); when latency inflates — the queueing signal of saturation —
// the limit shrinks multiplicatively. Drops (sheds, timeouts) apply an
// immediate multiplicative backoff, so the limiter reacts to refusals even
// before their latency shows up in a sample.
//
// The limiter is a pure function of the Observe/OnDrop call sequence — it
// never reads a clock — so tests can drive it with a deterministic RTT
// schedule. All methods are safe for concurrent use.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	limit    float64
	shortRTT float64 // fast EWMA of recent samples (seconds)
	longRTT  float64 // slow EWMA tracking the no-load floor (seconds)
	samples  int64
	drops    int64
}

// NewLimiter returns a limiter starting at cfg.Initial.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// Limit returns the current effective limit, in [Min, Max].
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Observe feeds one measured round-trip time (queue wait + compute for a
// served request or wave) and recomputes the limit.
func (l *Limiter) Observe(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	s := rtt.Seconds()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples++
	if l.samples == 1 {
		l.shortRTT, l.longRTT = s, s
	} else {
		l.shortRTT += 0.4 * (s - l.shortRTT)
		// The baseline chases the no-load floor: it follows improvements
		// quickly and degradations slowly, so sustained queueing cannot
		// talk the limiter into accepting inflated latency as the new
		// normal within one overload episode.
		alpha := 0.002
		if s < l.longRTT {
			alpha = 0.5
		}
		l.longRTT += alpha * (s - l.longRTT)
	}
	// Gradient step: ratio of tolerated baseline to recent latency, clamped
	// so one outlier cannot collapse the window. A healthy limiter
	// (gradient at 1) also earns a sqrt queue allowance to probe upward; a
	// congested one must not, or the allowance would hold the limit above
	// Min forever.
	gradient := l.cfg.Tolerance * l.longRTT / l.shortRTT
	if gradient > 1 {
		gradient = 1
	}
	if gradient < 0.5 {
		gradient = 0.5
	}
	next := l.limit * gradient
	if gradient >= 1 {
		next += math.Sqrt(l.limit)
	}
	l.limit += l.cfg.Smoothing * (next - l.limit)
	l.clampLocked()
}

// OnDrop records one shed, eviction, or queue timeout and applies the
// multiplicative backoff.
func (l *Limiter) OnDrop() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drops++
	l.limit *= l.cfg.DropBackoff
	l.clampLocked()
}

func (l *Limiter) clampLocked() {
	if l.limit < float64(l.cfg.Min) {
		l.limit = float64(l.cfg.Min)
	}
	if l.limit > float64(l.cfg.Max) {
		l.limit = float64(l.cfg.Max)
	}
}

// Baseline returns the smoothed no-load RTT estimate (0 before the first
// sample).
func (l *Limiter) Baseline() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.longRTT * float64(time.Second))
}

// RecentRTT returns the fast-window RTT estimate (0 before the first
// sample).
func (l *Limiter) RecentRTT() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.shortRTT * float64(time.Second))
}

// Samples returns how many RTT observations have been fed.
func (l *Limiter) Samples() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.samples
}

// Drops returns how many drop events have been fed.
func (l *Limiter) Drops() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drops
}
