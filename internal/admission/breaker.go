package admission

import (
	"sync"
	"time"
)

// State is a circuit breaker state.
type State uint8

const (
	// StateClosed: requests flow; failures are counted.
	StateClosed State = iota
	// StateOpen: requests are refused without being attempted until the
	// cooldown elapses.
	StateOpen
	// StateHalfOpen: one probe is allowed through; its outcome decides
	// between closing and re-opening.
	StateHalfOpen
)

// String returns the state's wire name, used as a metric label value and in
// health lines.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes NewBreaker. The zero value uses the defaults noted on
// each field.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 3). A success resets the count.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 30s).
	Cooldown time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close the
	// breaker again (default 1).
	ProbeSuccesses int
	// Now replaces the clock (tests); nil uses time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a closed/open/half-open circuit breaker with latched counts.
// Repeated failures of the guarded operation open it; while open, Allow
// refuses immediately (the caller stops hammering a doomed operation);
// after the cooldown one probe is let through, and its outcome decides
// whether the circuit closes or re-opens for another cooldown. The clock
// is injectable, so every transition is deterministic under test. All
// methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu           sync.Mutex
	state        State
	consecutive  int       // consecutive failures while closed
	probeWins    int       // consecutive successes while half-open
	probing      bool      // a half-open probe is in flight
	openedAt     time.Time // when the breaker last opened
	failures     int64     // latched: total failures ever recorded
	opens        int64     // latched: times the breaker opened
	onTransition func(from, to State)
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// OnTransition registers fn to be called (outside the breaker's lock) on
// every state change. At most one callback; later calls replace it.
func (b *Breaker) OnTransition(fn func(from, to State)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// transitionLocked moves to state `to` and returns the callback to run
// after unlocking (nil if none).
func (b *Breaker) transitionLocked(to State) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if to == StateOpen {
		b.opens++
		b.openedAt = b.cfg.Now()
	}
	if fn := b.onTransition; fn != nil {
		return func() { fn(from, to) }
	}
	return nil
}

// Allow reports whether the guarded operation may proceed. While open it
// returns false until the cooldown elapses, at which point the breaker
// moves to half-open and admits exactly one probe; further calls are
// refused until that probe resolves via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var notify func()
	defer func() {
		b.mu.Unlock()
		if notify != nil {
			notify()
		}
	}()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		notify = b.transitionLocked(StateHalfOpen)
		b.probeWins = 0
		b.probing = true
		return true
	case StateHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful operation. In half-open it counts toward
// ProbeSuccesses and closes the breaker when reached; in closed it resets
// the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	var notify func()
	defer func() {
		b.mu.Unlock()
		if notify != nil {
			notify()
		}
	}()
	switch b.state {
	case StateClosed:
		b.consecutive = 0
	case StateHalfOpen:
		b.probing = false
		b.probeWins++
		if b.probeWins >= b.cfg.ProbeSuccesses {
			notify = b.transitionLocked(StateClosed)
			b.consecutive = 0
		}
	}
}

// Failure records a failed operation. In closed it opens the breaker once
// FailureThreshold consecutive failures accumulate; in half-open the probe
// failed and the breaker re-opens for another cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var notify func()
	defer func() {
		b.mu.Unlock()
		if notify != nil {
			notify()
		}
	}()
	b.failures++
	switch b.state {
	case StateClosed:
		b.consecutive++
		if b.consecutive >= b.cfg.FailureThreshold {
			notify = b.transitionLocked(StateOpen)
		}
	case StateHalfOpen:
		b.probing = false
		notify = b.transitionLocked(StateOpen)
	}
}

// Cancel resolves an in-flight half-open probe as neither success nor
// failure (the operation was cancelled before it could tell the breaker
// anything), releasing the probe latch so the next Allow admits a fresh
// probe. A no-op in other states.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	if b.state == StateHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// State returns the current state, accounting for an elapsed cooldown (an
// open breaker whose cooldown has passed reports half-open readiness only
// via Allow; State reports the stored state to keep reads side-effect
// free).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Failures returns the latched total failure count.
func (b *Breaker) Failures() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// ConsecutiveFailures returns the current consecutive-failure count while
// closed.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive
}
