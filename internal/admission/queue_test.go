package admission

import (
	"sync"
	"testing"
	"time"
)

func TestQueueServeOrder(t *testing.T) {
	q := NewQueue[int]()
	// Interleave classes; serve order must be all interactive (FIFO), then
	// batch, then background.
	q.Push(30, Background, 100)
	q.Push(10, Interactive, 100)
	q.Push(20, Batch, 100)
	q.Push(11, Interactive, 100)
	q.Push(21, Batch, 100)
	want := []struct {
		v int
		c Class
	}{{10, Interactive}, {11, Interactive}, {20, Batch}, {21, Batch}, {30, Background}}
	for i, w := range want {
		v, c, ok := q.TryPop()
		if !ok || v != w.v || c != w.c {
			t.Fatalf("pop %d = (%d, %v, %v), want (%d, %v, true)", i, v, c, ok, w.v, w.c)
		}
	}
	if _, _, ok := q.TryPop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueLIFOEvictionWithinLowerClass(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1, Batch, 3)
	q.Push(2, Batch, 3)
	q.Push(3, Background, 3)
	// Budget exhausted. An interactive arrival must evict the *youngest*
	// entry of the *lowest* non-empty class below it: background 3.
	res, victim := q.Push(100, Interactive, 3)
	if res != AdmittedEvicted || victim != 3 {
		t.Fatalf("push = (%v, %d), want (AdmittedEvicted, 3)", res, victim)
	}
	// Next interactive arrival: background empty, so the youngest batch (2)
	// goes.
	res, victim = q.Push(101, Interactive, 3)
	if res != AdmittedEvicted || victim != 2 {
		t.Fatalf("push = (%v, %d), want (AdmittedEvicted, 2)", res, victim)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestQueueNeverEvictsSameOrHigherClass(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1, Interactive, 2)
	q.Push(2, Batch, 2)
	// A batch arrival over budget may not evict the queued batch entry
	// (same class) or the interactive one (higher class).
	res, _ := q.Push(3, Batch, 2)
	if res != Rejected {
		t.Fatalf("batch push over budget = %v, want Rejected", res)
	}
	// A background arrival has nothing below it to shed.
	res, _ = q.Push(4, Background, 2)
	if res != Rejected {
		t.Fatalf("background push over budget = %v, want Rejected", res)
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 (no evictions)", got)
	}
}

func TestQueueZeroBudgetRejectsUnlessEvictable(t *testing.T) {
	q := NewQueue[int]()
	if res, _ := q.Push(1, Interactive, 0); res != Rejected {
		t.Fatalf("push into zero budget = %v, want Rejected", res)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1, Interactive, 10)
	q.Push(2, Batch, 10)
	if !q.Close() {
		t.Fatal("first Close should return true")
	}
	if q.Close() {
		t.Fatal("second Close should return false")
	}
	if res, _ := q.Push(3, Interactive, 10); res != Closed {
		t.Fatalf("push after close = %v, want Closed", res)
	}
	// Queued items remain poppable.
	if v, _, ok := q.PopWait(); !ok || v != 1 {
		t.Fatalf("PopWait = (%d, %v), want (1, true)", v, ok)
	}
	if v, _, ok := q.PopWait(); !ok || v != 2 {
		t.Fatalf("PopWait = (%d, %v), want (2, true)", v, ok)
	}
	if _, _, ok := q.PopWait(); ok {
		t.Fatal("PopWait after drain of a closed queue should report !ok")
	}
}

func TestQueuePopWaitBlocksUntilPush(t *testing.T) {
	q := NewQueue[int]()
	got := make(chan int, 1)
	go func() {
		v, _, ok := q.PopWait()
		if ok {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer park
	q.Push(42, Batch, 10)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("PopWait woke with %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PopWait did not wake on Push")
	}
}

func TestQueuePopWaitWakesOnClose(t *testing.T) {
	q := NewQueue[int]()
	done := make(chan struct{})
	go func() {
		_, _, ok := q.PopWait()
		if !ok {
			close(done)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("PopWait did not wake on Close")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue[int]()
	const perClass = 200
	var wg sync.WaitGroup
	for c := Class(0); c < NumClasses; c++ {
		wg.Add(1)
		go func(c Class) {
			defer wg.Done()
			for i := 0; i < perClass; i++ {
				q.Push(int(c)*perClass+i, c, 10*perClass)
			}
		}(c)
	}
	drained := make(chan int)
	go func() {
		n := 0
		for {
			_, _, ok := q.PopWait()
			if !ok {
				drained <- n
				return
			}
			n++
		}
	}()
	wg.Wait()
	q.Close()
	if n := <-drained; n != int(NumClasses)*perClass {
		t.Fatalf("drained %d items, want %d", n, int(NumClasses)*perClass)
	}
}
