package admission

import "sync"

// Class is a request priority class. Lower values are more important.
type Class uint8

const (
	// Interactive is latency-sensitive user-facing traffic: dequeued first,
	// never browned out, shed only when nothing less important is queued.
	Interactive Class = iota
	// Batch is throughput traffic that tolerates delay and degraded
	// answers.
	Batch
	// Background is best-effort traffic: first to be shed or browned out.
	Background
	// NumClasses is the number of priority classes.
	NumClasses
)

// String returns the class's wire name, used as the priority label value in
// metric families.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	}
	return "unknown"
}

// PushResult is the admission decision for one Push.
type PushResult uint8

const (
	// Admitted: the item was enqueued within budget.
	Admitted PushResult = iota
	// AdmittedEvicted: the item was enqueued over budget by shedding the
	// youngest queued item of a strictly lower class (returned as victim).
	AdmittedEvicted
	// Rejected: the item was not enqueued — the budget is exhausted and no
	// lower class has anything to shed.
	Rejected
	// Closed: the queue has been closed; nothing is admitted.
	Closed
)

// cqueue is one class's pending items: a slice consumed from head so pops
// are O(1) and the backing array is reused across fill/drain cycles.
type cqueue[T any] struct {
	items []T
	head  int
}

func (c *cqueue[T]) len() int { return len(c.items) - c.head }

func (c *cqueue[T]) push(item T) { c.items = append(c.items, item) }

// popOldest removes the item that has waited longest (FIFO serve order).
func (c *cqueue[T]) popOldest() T {
	item := c.items[c.head]
	var zero T
	c.items[c.head] = zero // release the reference
	c.head++
	if c.head == len(c.items) {
		c.items, c.head = c.items[:0], 0
	}
	return item
}

// popYoungest removes the most recently pushed item (LIFO shed order).
func (c *cqueue[T]) popYoungest() T {
	last := len(c.items) - 1
	item := c.items[last]
	var zero T
	c.items[last] = zero
	c.items = c.items[:last]
	if c.head == len(c.items) {
		c.items, c.head = c.items[:0], 0
	}
	return item
}

// Queue is a priority admission queue: one FIFO per class, served in class
// order (all Interactive before any Batch before any Background), with
// LIFO-within-class shedding — when an arrival must displace queued work,
// the victim is the *youngest* item of the lowest non-empty class, the one
// that has invested the least waiting time.
//
// The queue has one consumer (the server's dispatcher) and many producers.
// All methods are safe for concurrent use.
type Queue[T any] struct {
	mu      sync.Mutex
	classes [NumClasses]cqueue[T]
	size    int
	closed  bool
	// wake is a 1-buffered signal to the single consumer; it never closes
	// (Close signals through it instead), so producers can always do a
	// non-blocking send.
	wake chan struct{}
}

// NewQueue returns an empty open queue.
func NewQueue[T any]() *Queue[T] {
	return &Queue[T]{wake: make(chan struct{}, 1)}
}

// Push offers item for admission under the given queue budget (the number
// of items that may be queued right now — the caller derives it from the
// effective concurrency limit minus in-service work, capped by the hard
// ceiling). Within budget the item is enqueued. Over budget, the youngest
// item of the lowest non-empty class *strictly below* c is evicted to make
// room (AdmittedEvicted, victim returned for the caller to answer);
// without such a victim the push is Rejected. A closed queue admits
// nothing.
func (q *Queue[T]) Push(item T, c Class, budget int) (PushResult, T) {
	var zero T
	if c >= NumClasses {
		c = NumClasses - 1
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Closed, zero
	}
	if q.size < budget {
		q.classes[c].push(item)
		q.size++
		q.mu.Unlock()
		q.signal()
		return Admitted, zero
	}
	// Shed from the back: walk classes less important than the arrival,
	// least important first, and take the youngest entry of the first one
	// that has any.
	for victimClass := NumClasses - 1; victimClass > c; victimClass-- {
		if q.classes[victimClass].len() == 0 {
			continue
		}
		victim := q.classes[victimClass].popYoungest()
		q.classes[c].push(item)
		q.mu.Unlock()
		q.signal()
		return AdmittedEvicted, victim
	}
	q.mu.Unlock()
	return Rejected, zero
}

// signal nudges the consumer; the 1-buffer coalesces bursts.
func (q *Queue[T]) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// TryPop removes the next item in serve order (class order, FIFO within a
// class) without blocking. ok is false when the queue is empty.
func (q *Queue[T]) TryPop() (item T, c Class, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

func (q *Queue[T]) popLocked() (item T, c Class, ok bool) {
	for cl := Class(0); cl < NumClasses; cl++ {
		if q.classes[cl].len() > 0 {
			q.size--
			return q.classes[cl].popOldest(), cl, true
		}
	}
	var zero T
	return zero, 0, false
}

// PopWait blocks until an item is available (returning it in serve order)
// or the queue is closed AND drained, which is the consumer's signal to
// exit. Single-consumer only.
func (q *Queue[T]) PopWait() (item T, c Class, ok bool) {
	for {
		q.mu.Lock()
		if item, c, ok = q.popLocked(); ok {
			q.mu.Unlock()
			return item, c, true
		}
		if q.closed {
			q.mu.Unlock()
			var zero T
			return zero, 0, false
		}
		q.mu.Unlock()
		<-q.wake
	}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// LenClass returns the number of queued items in class c.
func (q *Queue[T]) LenClass(c Class) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if c >= NumClasses {
		return 0
	}
	return q.classes[c].len()
}

// Close stops admission. Items already queued remain poppable — the
// consumer drains them before PopWait reports closed. Returns true on the
// first call.
func (q *Queue[T]) Close() bool {
	q.mu.Lock()
	first := !q.closed
	q.closed = true
	q.mu.Unlock()
	if first {
		q.signal()
	}
	return first
}

// IsClosed reports whether Close has been called.
func (q *Queue[T]) IsClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}
