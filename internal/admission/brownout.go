package admission

import "sync"

// BrownoutConfig tunes NewBrownout. The zero value uses the defaults noted
// on each field.
type BrownoutConfig struct {
	// Threshold is the shed-rate EWMA at which brownout engages (default
	// 0.1: one in ten admission decisions shedding means the server is
	// past its knee).
	Threshold float64
	// ExitThreshold is the rate below which brownout disengages (default
	// Threshold/2); the gap is hysteresis so the mode does not flap at the
	// boundary.
	ExitThreshold float64
	// Alpha is the EWMA step per admission decision (default 0.05, i.e. a
	// ~20-decision memory).
	Alpha float64
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.1
	}
	if c.ExitThreshold <= 0 || c.ExitThreshold > c.Threshold {
		c.ExitThreshold = c.Threshold / 2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.05
	}
	return c
}

// Brownout tracks the recent shed rate and decides when the server should
// stop refusing low-priority work outright and start answering it degraded
// instead (the brownout: reduced quality of service rather than none).
// It is a pure function of the Note call sequence — no clock — with
// hysteresis between the engage and disengage thresholds. All methods are
// safe for concurrent use.
type Brownout struct {
	cfg BrownoutConfig

	mu      sync.Mutex
	rate    float64 // EWMA of the shed indicator
	active  bool
	entries int64 // times brownout engaged
}

// NewBrownout returns a detector with no history (inactive, rate 0).
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Note records one admission decision: shed is true when the request was
// refused or evicted, false when it was admitted.
func (b *Brownout) Note(shed bool) {
	v := 0.0
	if shed {
		v = 1.0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rate += b.cfg.Alpha * (v - b.rate)
	switch {
	case !b.active && b.rate >= b.cfg.Threshold:
		b.active = true
		b.entries++
	case b.active && b.rate < b.cfg.ExitThreshold:
		b.active = false
	}
}

// Active reports whether brownout mode is engaged.
func (b *Brownout) Active() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Rate returns the current shed-rate EWMA in [0, 1].
func (b *Brownout) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// Entries returns how many times brownout has engaged.
func (b *Brownout) Entries() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.entries
}
