package admission

import (
	"testing"
	"time"
)

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	if got := l.Limit(); got != 1024 {
		t.Fatalf("default initial limit = %d, want 1024 (Max)", got)
	}
	l = NewLimiter(LimiterConfig{Initial: 8, Min: 2, Max: 64})
	if got := l.Limit(); got != 8 {
		t.Fatalf("initial limit = %d, want 8", got)
	}
}

func TestLimiterGrowsUnderSteadyLatency(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4, Min: 2, Max: 256})
	// Steady RTTs at the no-load floor: gradient stays 1, the sqrt term
	// probes upward.
	for i := 0; i < 400; i++ {
		l.Observe(time.Millisecond)
	}
	if got := l.Limit(); got <= 4 {
		t.Fatalf("limit after steady low latency = %d, want > 4", got)
	}
}

func TestLimiterShrinksUnderInflatedLatency(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 64, Min: 2, Max: 256})
	// Establish a 1ms baseline.
	for i := 0; i < 50; i++ {
		l.Observe(time.Millisecond)
	}
	start := l.Limit()
	// Then sustained 10x inflation: gradient pins at 0.5 and the limit
	// decays toward Min.
	for i := 0; i < 200; i++ {
		l.Observe(10 * time.Millisecond)
	}
	got := l.Limit()
	if got >= start {
		t.Fatalf("limit after inflation = %d, want < starting %d", got, start)
	}
	if got != 2 {
		t.Fatalf("limit after sustained 10x inflation = %d, want Min=2", got)
	}
}

func TestLimiterRecoversAfterLoadDrops(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 64, Min: 2, Max: 256})
	for i := 0; i < 50; i++ {
		l.Observe(time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		l.Observe(10 * time.Millisecond)
	}
	low := l.Limit()
	// Latency returns to the floor: the limit climbs back.
	for i := 0; i < 400; i++ {
		l.Observe(time.Millisecond)
	}
	if got := l.Limit(); got <= low {
		t.Fatalf("limit after recovery = %d, want > %d", got, low)
	}
}

func TestLimiterBaselineChasesFloor(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 16})
	for i := 0; i < 20; i++ {
		l.Observe(8 * time.Millisecond)
	}
	// A faster sample pulls the baseline down quickly (alpha 0.5 on
	// improvement)...
	l.Observe(2 * time.Millisecond)
	fast := l.Baseline()
	if fast >= 6*time.Millisecond {
		t.Fatalf("baseline after fast sample = %v, want < 6ms", fast)
	}
	// ...while slow samples barely drag it back up (alpha 0.02 on
	// degradation).
	l.Observe(20 * time.Millisecond)
	if got := l.Baseline(); got > fast+time.Millisecond {
		t.Fatalf("baseline after one slow sample = %v, want near %v", got, fast)
	}
}

func TestLimiterDropBackoff(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 100, Min: 2, Max: 256, DropBackoff: 0.5})
	l.OnDrop()
	if got := l.Limit(); got != 50 {
		t.Fatalf("limit after one drop = %d, want 50", got)
	}
	for i := 0; i < 20; i++ {
		l.OnDrop()
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit after repeated drops = %d, want Min=2", got)
	}
	if got := l.Drops(); got != 21 {
		t.Fatalf("Drops() = %d, want 21", got)
	}
}

func TestLimiterClampsAtMax(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 8, Min: 2, Max: 10})
	for i := 0; i < 1000; i++ {
		l.Observe(time.Millisecond)
	}
	if got := l.Limit(); got != 10 {
		t.Fatalf("limit = %d, want clamped at Max=10", got)
	}
}

func TestLimiterIgnoresNonPositiveRTT(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 8})
	l.Observe(0)
	l.Observe(-time.Second)
	if got := l.Samples(); got != 0 {
		t.Fatalf("samples = %d, want 0", got)
	}
}
