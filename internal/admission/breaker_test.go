package admission

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, Now: clk.now})
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before cooldown")
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens = %d, want 1", got)
	}
	if got := b.Failures(); got != 3 {
		t.Fatalf("Failures = %d, want 3", got)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Now: clk.now})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %v, want closed (success reset the streak)", got)
	}
	if got := b.ConsecutiveFailures(); got != 2 {
		t.Fatalf("ConsecutiveFailures = %d, want 2", got)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute, Now: clk.now})
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clk.advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("must refuse mid-cooldown")
	}
	clk.advance(31 * time.Second)
	if !b.Allow() {
		t.Fatal("must admit the probe after cooldown")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe must be refused")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker must allow")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute, Now: clk.now})
	b.Failure()
	clk.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	// The cooldown restarts from the re-open.
	if b.Allow() {
		t.Fatal("must refuse right after re-open")
	}
	clk.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("must admit a new probe after the second cooldown")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens = %d, want 2", got)
	}
}

func TestBreakerMultiProbeClose(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, ProbeSuccesses: 2, Now: clk.now})
	b.Failure()
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe 1 must be admitted")
	}
	b.Success()
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("probe 2 must be admitted")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", got)
	}
}

func TestBreakerOnTransition(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, Now: clk.now})
	type hop struct{ from, to State }
	var hops []hop
	b.OnTransition(func(from, to State) { hops = append(hops, hop{from, to}) })
	b.Failure()
	clk.advance(2 * time.Second)
	b.Allow()
	b.Success()
	want := []hop{
		{StateClosed, StateOpen},
		{StateOpen, StateHalfOpen},
		{StateHalfOpen, StateClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("transitions = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, hops[i], want[i])
		}
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[State]string{
		StateClosed:   "closed",
		StateOpen:     "open",
		StateHalfOpen: "half-open",
		State(99):     "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
